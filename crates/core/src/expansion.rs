//! Query expansion (§3.4).
//!
//! Simple one- or two-keyword queries dominate real logs, and their
//! roots sit near the bottom of the hypercube where subcubes — and thus
//! search cost — are largest. The paper's remedy: "query expansion can
//! be used to expand keyword sets … the applications can add some
//! keywords, based on, say, the user's preference or his past logs.
//! This customization not only improves search quality, but also
//! alleviates the potential hot spot."
//!
//! [`QueryExpander`] implements that loop with zero global knowledge:
//! a cheap sampled search surfaces the *actual* refinement categories
//! present in the index (via [`crate::ranking::sample_categories`]),
//! the user's preference history ranks them, and every expanded query
//! provably searches a subcube nested inside the original (Lemma 3.3).

use std::collections::HashMap;

use crate::cluster::HypercubeIndex;
use crate::error::Error;
use crate::keyword::{Keyword, KeywordSet};
use crate::ranking;
use crate::search::SupersetQuery;

/// A proposed expansion of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expansion {
    /// The expanded query (`original ∪ extra`).
    pub query: KeywordSet,
    /// The keywords added.
    pub added: KeywordSet,
    /// Matches observed for this category in the sampling search (a
    /// lower bound on the category's true size).
    pub sampled_matches: usize,
    /// How many of the added keywords are in the user's preference
    /// history (primary ranking signal).
    pub preference_hits: usize,
}

/// Learns a user's keyword preferences and expands broad queries into
/// more specific ones that exist in the index.
///
/// # Example
///
/// ```
/// use hyperdex_core::expansion::QueryExpander;
/// use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId};
///
/// let mut index = HypercubeIndex::new(8, 0)?;
/// index.insert(ObjectId::from_raw(1), KeywordSet::parse("jazz piano")?)?;
/// index.insert(ObjectId::from_raw(2), KeywordSet::parse("jazz sax")?)?;
///
/// let mut expander = QueryExpander::new();
/// expander.note(&KeywordSet::parse("piano")?); // past behaviour
/// let expansions =
///     expander.expand(&mut index, &KeywordSet::parse("jazz")?, 16, 3)?;
/// // The user's piano preference ranks {jazz, piano} first.
/// assert_eq!(expansions[0].query, KeywordSet::parse("jazz piano")?);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryExpander {
    preference_counts: HashMap<Keyword, u64>,
}

impl QueryExpander {
    /// Creates an expander with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the keywords of a past query (or click) into the
    /// preference history.
    pub fn note(&mut self, keywords: &KeywordSet) {
        for k in keywords {
            *self.preference_counts.entry(k.clone()).or_insert(0) += 1;
        }
    }

    /// How often `keyword` appeared in the history.
    pub fn preference(&self, keyword: &Keyword) -> u64 {
        self.preference_counts.get(keyword).copied().unwrap_or(0)
    }

    /// Proposes up to `limit` expanded queries for `query`.
    ///
    /// Runs one sampled superset search (threshold `sample_size`,
    /// cache-enabled), groups the sample into refinement categories,
    /// and ranks single-step expansions by preference hits, then by
    /// sampled category size. Every proposal's root subcube nests
    /// inside the original query's (Lemma 3.3), so expanded searches
    /// are never more expensive.
    ///
    /// # Errors
    ///
    /// Returns the underlying search errors.
    pub fn expand(
        &self,
        index: &mut HypercubeIndex,
        query: &KeywordSet,
        sample_size: usize,
        limit: usize,
    ) -> Result<Vec<Expansion>, Error> {
        let sample = index
            .superset_search(&SupersetQuery::new(query.clone()).threshold(sample_size.max(1)))?;
        let categories = ranking::sample_categories(&sample.results, query, 1);
        let mut expansions: Vec<Expansion> = categories
            .into_iter()
            .filter(|c| !c.extra.is_empty())
            .map(|c| {
                let preference_hits = c.extra.iter().filter(|k| self.preference(k) > 0).count();
                Expansion {
                    query: query.union(&c.extra),
                    added: c.extra,
                    sampled_matches: c.total,
                    preference_hits,
                }
            })
            .collect();
        expansions.sort_by(|a, b| {
            b.preference_hits
                .cmp(&a.preference_hits)
                .then_with(|| b.sampled_matches.cmp(&a.sampled_matches))
                .then_with(|| a.added.len().cmp(&b.added.len()))
                .then_with(|| a.added.cmp(&b.added))
        });
        expansions.truncate(limit);
        Ok(expansions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_dht::ObjectId;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn music_index() -> HypercubeIndex {
        let mut index = HypercubeIndex::new(8, 0).unwrap();
        let records = [
            (1, "jazz piano"),
            (2, "jazz piano 1959"),
            (3, "jazz sax"),
            (4, "jazz sax"),
            (5, "jazz sax"),
            (6, "rock guitar"),
        ];
        for (id, k) in records {
            index.insert(ObjectId::from_raw(id), set(k)).unwrap();
        }
        index
    }

    #[test]
    fn expansions_come_from_real_categories() {
        let mut index = music_index();
        let expander = QueryExpander::new();
        let exps = expander.expand(&mut index, &set("jazz"), 64, 10).unwrap();
        assert!(!exps.is_empty());
        for e in &exps {
            assert!(e.query.is_superset(&set("jazz")));
            assert!(
                index.matching_count(&e.query) > 0,
                "expansion {} matches nothing",
                e.query
            );
        }
    }

    #[test]
    fn preferences_outrank_popularity() {
        let mut index = music_index();
        // "sax" is the popular category (3 objects), but the user keeps
        // asking for piano.
        let mut expander = QueryExpander::new();
        expander.note(&set("piano"));
        expander.note(&set("piano 1959"));
        let exps = expander.expand(&mut index, &set("jazz"), 64, 10).unwrap();
        assert!(
            exps[0].added.contains(&"piano".parse().unwrap()),
            "first expansion should honor the preference, got +{}",
            exps[0].added
        );
        // Without history, popularity wins.
        let neutral = QueryExpander::new();
        let exps = neutral.expand(&mut index, &set("jazz"), 64, 10).unwrap();
        assert_eq!(exps[0].added, set("sax"), "most-sampled category first");
    }

    #[test]
    fn expansion_shrinks_search_cost() {
        let mut index = music_index();
        let expander = QueryExpander::new();
        let exps = expander.expand(&mut index, &set("jazz"), 64, 1).unwrap();
        let broad = index
            .superset_search(&SupersetQuery::new(set("jazz")).use_cache(false))
            .unwrap();
        let narrow = index
            .superset_search(&SupersetQuery::new(exps[0].query.clone()).use_cache(false))
            .unwrap();
        assert!(
            narrow.stats.nodes_contacted <= broad.stats.nodes_contacted,
            "expanded query must not search a larger subcube (Lemma 3.3)"
        );
        // Geometric nesting.
        assert!(index
            .vertex_for(&exps[0].query)
            .contains(index.vertex_for(&set("jazz"))));
    }

    #[test]
    fn no_matches_no_expansions() {
        let mut index = music_index();
        let expander = QueryExpander::new();
        let exps = expander.expand(&mut index, &set("polka"), 16, 5).unwrap();
        assert!(exps.is_empty());
    }

    #[test]
    fn limit_respected_and_exact_matches_excluded() {
        let mut index = music_index();
        let expander = QueryExpander::new();
        let exps = expander.expand(&mut index, &set("jazz"), 64, 1).unwrap();
        assert_eq!(exps.len(), 1);
        // The ∅ category (objects with exactly {jazz}) is not an
        // expansion.
        assert!(exps.iter().all(|e| !e.added.is_empty()));
    }
}
