//! The full keyword-search service over a DHT (§2's four-layer system).
//!
//! [`KeywordSearchService`] wires the pieces together exactly as §3.3
//! describes:
//!
//! * **Publish**: the publisher routes `Insert(L(σ), σ, u)` to place the
//!   reference; if this created the *first* copy, node `L(σ)` computes
//!   `F_h(K_σ)` and routes an index entry to the physical node
//!   `g(F_h(K_σ))`.
//! * **Withdraw**: the reverse; the index entry is deleted only when the
//!   last copy disappears.
//! * **Pin / superset search**: resolved in the hypercube layer; every
//!   logical message is one message between physical DHT nodes (the
//!   direct `g`-mapping means no extra routing per hop once neighbor
//!   contacts are known — the paper's fourth remark).
//!
//! Costs are accounted in DHT hops (`Receipt`-style) plus the search
//! layer's [`crate::search::SearchStats`].

use hyperdex_dht::{Dolr, NodeId, ObjectId};
use hyperdex_hypercube::Vertex;

use crate::cluster::HypercubeIndex;
use crate::error::Error;
use crate::intern::KeywordInterner;
use crate::keyword::KeywordSet;
use crate::mapping::VertexMap;
use crate::search::{PinOutcome, SupersetOutcome, SupersetQuery};

/// Builder for [`KeywordSearchService`].
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    nodes: usize,
    r: u8,
    seed: u64,
    replication: usize,
    cache_capacity: usize,
    store: Option<crate::store::StoreBackend>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            nodes: 64,
            r: 10,
            seed: 0,
            replication: 0,
            cache_capacity: 0,
            store: None,
        }
    }
}

impl ServiceBuilder {
    /// Number of physical DHT nodes (default 64).
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Hypercube dimensionality `r` (default 10).
    pub fn dimension(mut self, r: u8) -> Self {
        self.r = r;
        self
    }

    /// Master seed for all hash families and placement (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Reference replication factor in the DHT layer (default 0).
    pub fn replication(mut self, k: usize) -> Self {
        self.replication = k;
        self
    }

    /// Per-index-node result cache capacity in object entries
    /// (default 0 = disabled).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Posting-storage backend for the index layer (default: the
    /// `HYPERDEX_STORE` environment selection; DESIGN.md §17).
    pub fn store(mut self, store: crate::store::StoreBackend) -> Self {
        self.store = Some(store);
        self
    }

    /// Builds the service.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] for an invalid `r`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn build(self) -> Result<KeywordSearchService, Error> {
        let store = self
            .store
            .unwrap_or_else(crate::store::StoreBackend::from_env);
        let mut index = HypercubeIndex::with_store(self.r, self.seed, store)?;
        if self.cache_capacity > 0 {
            index.set_cache_capacity(self.cache_capacity);
        }
        Ok(KeywordSearchService {
            dht: Dolr::builder()
                .nodes(self.nodes)
                .seed(self.seed)
                .replication(self.replication)
                .build(),
            index,
            map: VertexMap::new(self.seed),
            interner: KeywordInterner::new(),
        })
    }
}

/// Cost receipt for a publish or withdraw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The DHT node holding the object's references (`S(L(σ))`).
    pub ref_node: NodeId,
    /// Hops to place/remove the reference.
    pub ref_hops: usize,
    /// The hypercube vertex indexing the object, when the index layer
    /// was touched (first copy on publish / last copy on withdraw).
    pub index_vertex: Option<Vertex>,
    /// The physical node playing that vertex.
    pub index_node: Option<NodeId>,
    /// Hops to update the index entry (0 when the index was untouched).
    pub index_hops: usize,
}

impl PublishReceipt {
    /// Total DHT hops charged to the operation.
    pub fn total_hops(&self) -> usize {
        self.ref_hops + self.index_hops
    }
}

/// Search outcome annotated with the DHT routing cost to reach the
/// hypercube layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSearchOutcome<T> {
    /// The hypercube-layer outcome.
    pub outcome: T,
    /// Hops from the requester to the root index node, plus one physical
    /// message per logical hypercube message (direct `g`-mapping).
    pub dht_hops: usize,
}

/// The assembled keyword/attribute search layer over a Chord-like DHT.
///
/// # Example
///
/// ```
/// use hyperdex_core::{KeywordSearchService, KeywordSet, ObjectId, SupersetQuery};
///
/// let mut svc = KeywordSearchService::builder()
///     .nodes(32)
///     .dimension(10)
///     .build()?;
/// let publisher = svc.random_node();
/// let obj = ObjectId::from_name("whitepaper.pdf");
/// svc.publish(publisher, obj, KeywordSet::parse("p2p search dht")?)?;
///
/// let hit = svc.pin_search(publisher, &KeywordSet::parse("p2p search dht")?);
/// assert_eq!(hit.outcome.results, vec![obj]);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct KeywordSearchService {
    dht: Dolr,
    index: HypercubeIndex,
    map: VertexMap,
    interner: KeywordInterner,
}

impl KeywordSearchService {
    /// Starts building a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// A uniformly random live DHT node (useful as a requester).
    pub fn random_node(&mut self) -> NodeId {
        self.dht.random_node()
    }

    /// The underlying DHT (read access).
    pub fn dht(&self) -> &Dolr {
        &self.dht
    }

    /// The hypercube index layer (read access).
    pub fn index(&self) -> &HypercubeIndex {
        &self.index
    }

    /// The service's keyword-set intern pool (read access): one `Arc`
    /// per distinct published keyword set, shared with the index layer.
    pub fn interner(&self) -> &KeywordInterner {
        &self.interner
    }

    /// The physical node playing hypercube vertex `v` — `S(g(v))`.
    pub fn node_for_vertex(&self, v: Vertex) -> NodeId {
        self.map
            .physical_node(v, self.dht.ring())
            .expect("ring is never empty")
    }

    /// Publishes a copy of `object` held at `publisher` with keyword set
    /// `keywords` (§3.3 Insert).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] for an empty keyword set.
    pub fn publish(
        &mut self,
        publisher: NodeId,
        object: ObjectId,
        keywords: KeywordSet,
    ) -> Result<PublishReceipt, Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        let first_copy = self.dht.read(publisher, object).is_none();
        let receipt = self.dht.insert(publisher, object, publisher);
        let (index_vertex, index_node, index_hops) = if first_copy {
            // Node L(σ) computes F_h(K_σ) and routes the index entry to
            // g(F_h(K_σ)). Popular keyword sets recur across objects, so
            // the entry shares one interned allocation per distinct set.
            let keywords = self.interner.intern(keywords);
            let vertex = self.index.vertex_for(&keywords);
            let index_node = self.node_for_vertex(vertex);
            let hops = self
                .dht
                .router()
                .hops(receipt.target, self.map.ring_key(vertex));
            self.index.insert_arc(object, keywords)?;
            (Some(vertex), Some(index_node), hops)
        } else {
            (None, None, 0)
        };
        Ok(PublishReceipt {
            ref_node: receipt.target,
            ref_hops: receipt.hops,
            index_vertex,
            index_node,
            index_hops,
        })
    }

    /// Withdraws the copy of `object` held at `publisher` (§3.3 Delete).
    /// The index entry disappears only with the last copy.
    pub fn withdraw(
        &mut self,
        publisher: NodeId,
        object: ObjectId,
        keywords: &KeywordSet,
    ) -> PublishReceipt {
        let receipt = self.dht.delete(publisher, object, publisher);
        let last_copy = self.dht.read(publisher, object).is_none();
        let (index_vertex, index_node, index_hops) = if last_copy {
            let vertex = self.index.vertex_for(keywords);
            let index_node = self.node_for_vertex(vertex);
            let hops = self
                .dht
                .router()
                .hops(receipt.target, self.map.ring_key(vertex));
            self.index.remove(object, keywords);
            (Some(vertex), Some(index_node), hops)
        } else {
            (None, None, 0)
        };
        PublishReceipt {
            ref_node: receipt.target,
            ref_hops: receipt.hops,
            index_vertex,
            index_node,
            index_hops,
        }
    }

    /// Pin search from `requester`: one route to `g(F_h(K))`.
    pub fn pin_search(
        &mut self,
        requester: NodeId,
        keywords: &KeywordSet,
    ) -> ServiceSearchOutcome<PinOutcome> {
        let vertex = self.index.vertex_for(keywords);
        let dht_hops = self.dht.router().hops(requester, self.map.ring_key(vertex));
        ServiceSearchOutcome {
            outcome: self.index.pin_search(keywords),
            dht_hops,
        }
    }

    /// Superset search from `requester`: route to the root index node,
    /// then one physical message per logical `T_QUERY` (direct mapping).
    ///
    /// # Errors
    ///
    /// Returns the hypercube layer's errors.
    pub fn superset_search(
        &mut self,
        requester: NodeId,
        query: &SupersetQuery,
    ) -> Result<ServiceSearchOutcome<SupersetOutcome>, Error> {
        let vertex = self.index.vertex_for(&query.keywords);
        let route_hops = self.dht.router().hops(requester, self.map.ring_key(vertex));
        let outcome = self.index.superset_search(query)?;
        // Beyond the initial route, each logical query message crosses
        // one physical link (neighbor contacts are cached, §3.4).
        let dht_hops = route_hops + (outcome.stats.query_messages.saturating_sub(1)) as usize;
        Ok(ServiceSearchOutcome { outcome, dht_hops })
    }

    /// Per-*physical-node* index load: how many indexed objects each DHT
    /// node carries once vertices are mapped through `g`. Demonstrates
    /// the §3.2 regime where `2^r` logical nodes fold onto fewer
    /// physical ones.
    pub fn physical_loads(&self) -> Vec<(NodeId, usize)> {
        let mut loads: std::collections::HashMap<NodeId, usize> =
            self.dht.ring().iter().map(|n| (n, 0)).collect();
        for (vertex, load) in self.index.node_loads() {
            let node = self
                .map
                .physical_node(vertex, self.dht.ring())
                .expect("ring non-empty");
            *loads.entry(node).or_insert(0) += load;
        }
        let mut out: Vec<(NodeId, usize)> = loads.into_iter().collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// Retrieves a copy reference for `object` via the DHT (the final
    /// `Read(σ)` step after a search returns object ids).
    pub fn fetch_reference(
        &self,
        requester: NodeId,
        object: ObjectId,
    ) -> Option<hyperdex_dht::ReadResult> {
        self.dht.read(requester, object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::TraversalOrder;

    fn service() -> KeywordSearchService {
        KeywordSearchService::builder()
            .nodes(32)
            .dimension(10)
            .seed(7)
            .build()
            .unwrap()
    }

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    #[test]
    fn publish_indexes_first_copy_only() {
        let mut svc = service();
        let obj = ObjectId::from_name("shared-file");
        let a = svc.random_node();
        let b = svc.random_node();
        let r1 = svc.publish(a, obj, set("p2p index")).unwrap();
        assert!(r1.index_vertex.is_some(), "first copy creates the index");
        let r2 = svc.publish(b, obj, set("p2p index")).unwrap();
        assert!(r2.index_vertex.is_none(), "second copy skips the index");
        assert_eq!(svc.index().len(), 1);
    }

    #[test]
    fn withdraw_removes_index_with_last_copy() {
        let mut svc = service();
        let obj = ObjectId::from_name("departing");
        let nodes: Vec<NodeId> = svc.dht().ring().iter().take(2).collect();
        svc.publish(nodes[0], obj, set("a b")).unwrap();
        svc.publish(nodes[1], obj, set("a b")).unwrap();
        let r1 = svc.withdraw(nodes[0], obj, &set("a b"));
        assert!(r1.index_vertex.is_none(), "copies remain");
        assert_eq!(svc.index().len(), 1);
        let r2 = svc.withdraw(nodes[1], obj, &set("a b"));
        assert!(r2.index_vertex.is_some(), "last copy clears the index");
        assert!(svc.index().is_empty());
    }

    #[test]
    fn pin_and_superset_find_published_objects() {
        let mut svc = service();
        let obj = ObjectId::from_name("doc");
        let publisher = svc.random_node();
        svc.publish(publisher, obj, set("rust dht paper")).unwrap();
        let requester = svc.random_node();
        let pin = svc.pin_search(requester, &set("rust dht paper"));
        assert_eq!(pin.outcome.results, vec![obj]);
        let sup = svc
            .superset_search(requester, &SupersetQuery::new(set("rust")).threshold(10))
            .unwrap();
        assert!(sup.outcome.results.iter().any(|r| r.object == obj));
        assert!(sup.dht_hops >= sup.outcome.stats.query_messages as usize - 1);
    }

    #[test]
    fn fetch_reference_completes_the_loop() {
        let mut svc = service();
        let obj = ObjectId::from_name("payload");
        let publisher = svc.random_node();
        svc.publish(publisher, obj, set("k1 k2")).unwrap();
        let found = svc.fetch_reference(publisher, obj).expect("reference");
        assert_eq!(found.refs[0].owner, publisher);
    }

    #[test]
    fn publish_interns_recurring_keyword_sets() {
        let mut svc = service();
        let publisher = svc.random_node();
        // Four objects, two distinct keyword sets (one given in both
        // orders — interning is set-level, not string-level).
        svc.publish(publisher, ObjectId::from_raw(1), set("news tvbs"))
            .unwrap();
        svc.publish(publisher, ObjectId::from_raw(2), set("tvbs news"))
            .unwrap();
        svc.publish(publisher, ObjectId::from_raw(3), set("news tvbs"))
            .unwrap();
        svc.publish(publisher, ObjectId::from_raw(4), set("movies"))
            .unwrap();
        assert_eq!(svc.index().len(), 4, "all four objects indexed");
        assert_eq!(svc.interner().len(), 2, "one Arc per distinct set");
        // Re-publishing an existing copy never touches the pool.
        svc.publish(publisher, ObjectId::from_raw(4), set("something else"))
            .unwrap();
        assert_eq!(svc.interner().len(), 2);
    }

    #[test]
    fn publish_rejects_empty_keywords() {
        let mut svc = service();
        let publisher = svc.random_node();
        assert_eq!(
            svc.publish(publisher, ObjectId::from_raw(1), KeywordSet::new()),
            Err(Error::EmptyKeywordSet)
        );
    }

    #[test]
    fn physical_loads_cover_all_objects() {
        let mut svc = service();
        let publisher = svc.random_node();
        for i in 0..100 {
            svc.publish(
                publisher,
                ObjectId::from_raw(i),
                set(&format!("tag{} tag{}", i % 10, i % 7)),
            )
            .unwrap();
        }
        let loads = svc.physical_loads();
        let total: usize = loads.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, svc.index().len());
        assert_eq!(loads.len(), 32, "every physical node listed");
    }

    #[test]
    fn bottom_up_order_prefers_specific() {
        let mut svc = service();
        let publisher = svc.random_node();
        svc.publish(publisher, ObjectId::from_raw(1), set("q"))
            .unwrap();
        svc.publish(publisher, ObjectId::from_raw(2), set("q extra1 extra2"))
            .unwrap();
        let requester = svc.random_node();
        let out = svc
            .superset_search(
                requester,
                &SupersetQuery::new(set("q"))
                    .order(TraversalOrder::BottomUp)
                    .threshold(1),
            )
            .unwrap();
        assert_eq!(out.outcome.results[0].object, ObjectId::from_raw(2));
    }
}
