//! Error types for the keyword index.

use std::fmt;

use hyperdex_hypercube::DimensionError;

/// Errors raised by the keyword index and search layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The hypercube dimensionality or a bit pattern was invalid.
    Dimension(DimensionError),
    /// A keyword was empty (or whitespace-only) after normalization.
    EmptyKeyword,
    /// An operation that requires keywords received an empty set.
    EmptyKeywordSet,
    /// A superset-search threshold of zero was requested.
    ZeroThreshold,
    /// A decomposed index was asked about an unknown field.
    UnknownField {
        /// The field name that has no hypercube.
        field: String,
    },
    /// A fault-tolerant search was configured with a zero base timeout
    /// (the retry machinery would spin without ever waiting).
    ZeroTimeout,
    /// A churn configuration was rejected (zero interval, empty
    /// membership, double enable, …).
    InvalidChurnConfig {
        /// Why the configuration was rejected.
        reason: &'static str,
    },
    /// A dense per-vertex operation was asked for a cube too large to
    /// sweep: it touches all `2^r` vertices, so `r` is capped well
    /// below the sparse layers' limit.
    DimensionTooLarge {
        /// The requested cube dimension.
        r: u8,
        /// The largest dimension the operation supports.
        max: u8,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Dimension(e) => write!(f, "{e}"),
            Error::EmptyKeyword => write!(f, "keyword is empty after normalization"),
            Error::EmptyKeywordSet => write!(f, "operation requires at least one keyword"),
            Error::ZeroThreshold => write!(f, "superset search threshold must be positive"),
            Error::UnknownField { field } => {
                write!(f, "no hypercube registered for field `{field}`")
            }
            Error::ZeroTimeout => {
                write!(f, "fault-tolerant search requires a positive base timeout")
            }
            Error::InvalidChurnConfig { reason } => {
                write!(f, "invalid churn configuration: {reason}")
            }
            Error::DimensionTooLarge { r, max } => {
                write!(
                    f,
                    "cube dimension {r} exceeds the dense-sweep cap {max}: \
                     the operation touches all 2^r vertices"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dimension(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DimensionError> for Error {
    fn from(e: DimensionError) -> Self {
        Error::Dimension(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        assert!(Error::EmptyKeyword.to_string().contains("empty"));
        assert!(Error::ZeroThreshold.to_string().contains("positive"));
        assert!(Error::UnknownField { field: "os".into() }
            .to_string()
            .contains("os"));
        let too_large = Error::DimensionTooLarge { r: 17, max: 16 };
        assert!(too_large.to_string().contains("17"));
        assert!(too_large.to_string().contains("16"));
    }

    #[test]
    fn dimension_error_converts_and_sources() {
        use std::error::Error as _;
        let inner = hyperdex_hypercube::Shape::new(0).unwrap_err();
        let err: Error = inner.clone().into();
        assert_eq!(err, Error::Dimension(inner));
        assert!(err.source().is_some());
        assert!(Error::EmptyKeyword.source().is_none());
    }
}
