//! Error types for the keyword index.

use std::fmt;

use hyperdex_hypercube::DimensionError;

/// Errors raised by the keyword index and search layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The hypercube dimensionality or a bit pattern was invalid.
    Dimension(DimensionError),
    /// A keyword was empty (or whitespace-only) after normalization.
    EmptyKeyword,
    /// An operation that requires keywords received an empty set.
    EmptyKeywordSet,
    /// A superset-search threshold of zero was requested.
    ZeroThreshold,
    /// A decomposed index was asked about an unknown field.
    UnknownField {
        /// The field name that has no hypercube.
        field: String,
    },
    /// A fault-tolerant search was configured with a zero base timeout
    /// (the retry machinery would spin without ever waiting).
    ZeroTimeout,
    /// A churn configuration was rejected (zero interval, empty
    /// membership, double enable, …).
    InvalidChurnConfig {
        /// Why the configuration was rejected.
        reason: &'static str,
    },
    /// A dense per-vertex operation was asked for a cube too large to
    /// sweep: it touches all `2^r` vertices, so `r` is capped well
    /// below the sparse layers' limit.
    DimensionTooLarge {
        /// The requested cube dimension.
        r: u8,
        /// The largest dimension the operation supports.
        max: u8,
    },
    /// A network connection to a cluster endpoint was lost (refused,
    /// reset, or closed mid-request) and could not be re-established
    /// within the client's reconnect budget.
    ConnectionLost {
        /// The endpoint that went away, e.g. `127.0.0.1:7401`.
        endpoint: String,
        /// What the transport observed, e.g. "connection refused".
        detail: String,
    },
    /// A request did not complete within its deadline. The connection
    /// may still be healthy — the reply is simply late or lost.
    Timeout {
        /// What was being waited on, e.g. "pin reply" or "connect".
        operation: String,
        /// The deadline that expired, in milliseconds.
        after_ms: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Dimension(e) => write!(f, "{e}"),
            Error::EmptyKeyword => write!(f, "keyword is empty after normalization"),
            Error::EmptyKeywordSet => write!(f, "operation requires at least one keyword"),
            Error::ZeroThreshold => write!(f, "superset search threshold must be positive"),
            Error::UnknownField { field } => {
                write!(f, "no hypercube registered for field `{field}`")
            }
            Error::ZeroTimeout => {
                write!(f, "fault-tolerant search requires a positive base timeout")
            }
            Error::InvalidChurnConfig { reason } => {
                write!(f, "invalid churn configuration: {reason}")
            }
            Error::DimensionTooLarge { r, max } => {
                write!(
                    f,
                    "cube dimension {r} exceeds the dense-sweep cap {max}: \
                     the operation touches all 2^r vertices"
                )
            }
            Error::ConnectionLost { endpoint, detail } => {
                write!(f, "connection to {endpoint} lost: {detail}")
            }
            Error::Timeout {
                operation,
                after_ms,
            } => {
                write!(f, "{operation} timed out after {after_ms} ms")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dimension(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DimensionError> for Error {
    fn from(e: DimensionError) -> Self {
        Error::Dimension(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        assert!(Error::EmptyKeyword.to_string().contains("empty"));
        assert!(Error::ZeroThreshold.to_string().contains("positive"));
        assert!(Error::UnknownField { field: "os".into() }
            .to_string()
            .contains("os"));
        let too_large = Error::DimensionTooLarge { r: 17, max: 16 };
        assert!(too_large.to_string().contains("17"));
        assert!(too_large.to_string().contains("16"));
    }

    #[test]
    fn net_errors_name_the_endpoint_and_deadline() {
        let lost = Error::ConnectionLost {
            endpoint: "127.0.0.1:7401".into(),
            detail: "connection refused".into(),
        };
        assert!(lost.to_string().contains("127.0.0.1:7401"));
        assert!(lost.to_string().contains("refused"));
        let late = Error::Timeout {
            operation: "pin reply".into(),
            after_ms: 250,
        };
        assert!(late.to_string().contains("pin reply"));
        assert!(late.to_string().contains("250"));
    }

    #[test]
    fn dimension_error_converts_and_sources() {
        use std::error::Error as _;
        let inner = hyperdex_hypercube::Shape::new(0).unwrap_err();
        let err: Error = inner.clone().into();
        assert_eq!(err, Error::Dimension(inner));
        assert!(err.source().is_some());
        assert!(Error::EmptyKeyword.source().is_none());
    }
}
