//! Per-node FIFO query caches (§4, third experiment).
//!
//! The paper installs at each node a cache of query results managed by
//! "a simple FIFO scheme", with capacity `α · |O| / 2^r` — a fraction
//! `α` of the average per-node index size, measured in object entries.
//! A cached query lets the root answer without re-contacting its
//! subtree; because real query logs are heavily skewed (the top-10
//! queries exceed 60 % of daily volume), even `α = 1/6` collapses the
//! nodes-contacted metric below 1 % (Figure 9).
//!
//! An entry remembers whether it came from an *exhaustive* traversal.
//! An exhaustive entry serves any threshold (truncate); a partial entry
//! (early-terminated search) serves only thresholds it covers —
//! serving a larger threshold from it would silently drop matches.
//!
//! **Capacity units.** The paper says the capacity is "α × |O|/2^r,
//! where |O|/2^r is the average index size per node" but does not pin
//! down whether a cached *query* costs one slot or one slot per result
//! object. Only the former reproduces Figure 9's headline (<1 % of
//! nodes contacted at α = 1/6): popular queries return far more than
//! 21 objects, so under per-object accounting they would never be
//! cacheable and the cache would be useless exactly where the skewed
//! log needs it. We therefore count capacity in **cached queries**
//! (table entries), mirroring how the index itself counts entries.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::keyword::KeywordSet;
use crate::search::RankedObject;

/// Cached results of one superset query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResults {
    /// The results, in traversal order. Shared with the producing
    /// search's return value, so caching never deep-copies the list.
    pub results: Arc<Vec<RankedObject>>,
    /// Whether the producing traversal covered the whole subhypercube.
    pub exhausted: bool,
    /// The cache generation the entry was produced under. Stale entries
    /// (generation older than the cache's current one) are dropped on
    /// lookup — see [`FifoCache::bump_generation`].
    generation: u64,
}

impl CachedResults {
    /// Whether this entry can correctly answer a query wanting up to
    /// `threshold` results.
    pub fn covers(&self, threshold: usize) -> bool {
        self.exhausted || self.results.len() >= threshold
    }

    /// Storage cost: one cache slot per cached query (see the module
    /// docs for why slots are not per result object).
    fn cost(&self) -> usize {
        1
    }
}

/// A FIFO cache of superset-query results, sized in cached queries.
///
/// # Example
///
/// ```
/// use hyperdex_core::cache::FifoCache;
/// use hyperdex_core::KeywordSet;
///
/// let mut cache = FifoCache::new(4);
/// let q = KeywordSet::parse("mp3")?;
/// cache.put(q.clone(), std::sync::Arc::new(vec![]), true);
/// assert!(cache.lookup(&q, 10).is_some(), "exhaustive entry serves any t");
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoCache {
    /// Maximum number of cached queries (0 disables the cache).
    capacity: usize,
    entries: HashMap<KeywordSet, CachedResults>,
    order: VecDeque<KeywordSet>,
    held: usize,
    hits: u64,
    misses: u64,
    /// Current index generation. Bumped when vertex ownership moves
    /// (index handoff), invalidating every entry produced before the
    /// move: results cached from the old owner may not reflect inserts
    /// and deletes applied at the new one.
    generation: u64,
}

impl FifoCache {
    /// Creates a cache holding at most `capacity` cached queries.
    pub fn new(capacity: usize) -> Self {
        FifoCache {
            capacity,
            ..Self::default()
        }
    }

    /// The paper's sizing rule: capacity `= α · objects / 2^r`,
    /// rounded down.
    pub fn with_alpha(alpha: f64, total_objects: usize, r: u8) -> Self {
        let avg_index = total_objects as f64 / (1u64 << r) as f64;
        Self::new((alpha * avg_index).floor() as usize)
    }

    /// The configured capacity in cached queries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cached queries currently held.
    pub fn held(&self) -> usize {
        self.held
    }

    /// The current index generation (see [`FifoCache::bump_generation`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the index generation, invalidating every cached entry.
    ///
    /// Called when vertex ownership moves (index handoff after a join,
    /// leave, or crash takeover): entries cached against the old owner's
    /// table would otherwise keep answering even though the new owner's
    /// table may differ. Invalidation is lazy — stale entries are
    /// detected and dropped on their next lookup rather than eagerly
    /// swept, keeping the bump O(1).
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Looks up a query for a caller wanting up to `threshold` results.
    /// Counts a hit only when a usable entry exists; an absent, stale
    /// (pre-handoff), or non-covering entry counts as a miss.
    pub fn lookup(&mut self, query: &KeywordSet, threshold: usize) -> Option<&CachedResults> {
        // A stale entry must not serve: drop it and take the miss.
        let stale = self
            .entries
            .get(query)
            .is_some_and(|e| e.generation != self.generation);
        if stale {
            let old = self.entries.remove(query).expect("checked above");
            self.held -= old.cost();
            self.order.retain(|k| k != query);
        }
        // Split borrow: decide usability before taking the reference.
        let usable = self.entries.get(query).is_some_and(|e| e.covers(threshold));
        if usable {
            self.hits += 1;
            self.entries.get(query)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Caches `results` for `query`, evicting oldest entries (FIFO)
    /// until the new total fits. Entries costlier than the whole
    /// capacity are not cached. Re-inserting replaces the entry unless
    /// the existing one is exhaustive and the new one is not (an
    /// exhaustive entry is strictly more useful).
    pub fn put(&mut self, query: KeywordSet, results: Arc<Vec<RankedObject>>, exhausted: bool) {
        let entry = CachedResults {
            results,
            exhausted,
            generation: self.generation,
        };
        let cost = entry.cost();
        if self.capacity == 0 || cost > self.capacity {
            return;
        }
        if let Some(existing) = self.entries.get(&query) {
            // A stale exhaustive entry is worthless; only a *current*
            // exhaustive entry outranks a fresh partial one.
            if existing.generation == self.generation && existing.exhausted && !exhausted {
                return; // keep the better entry
            }
            let old_cost = existing.cost();
            self.entries.remove(&query);
            self.held -= old_cost;
            self.order.retain(|k| k != &query);
        }
        while self.held + cost > self.capacity {
            let evicted = self.order.pop_front().expect("held > 0 implies entries");
            let old = self.entries.remove(&evicted).expect("order tracks entries");
            self.held -= old.cost();
        }
        self.held += cost;
        self.order.push_back(query.clone());
        self.entries.insert(query, entry);
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Empties the cache (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.held = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_dht::ObjectId;

    fn q(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn results(n: usize) -> Arc<Vec<RankedObject>> {
        Arc::new(
            (0..n)
                .map(|i| RankedObject {
                    object: ObjectId::from_raw(i as u64),
                    keyword_set: Arc::new(KeywordSet::new()),
                    extra_keywords: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = FifoCache::new(10);
        assert!(c.lookup(&q("a"), 1).is_none());
        c.put(q("a"), results(2), true);
        assert!(c.lookup(&q("a"), 1).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), Some(0.5));
    }

    #[test]
    fn exhaustive_entry_serves_any_threshold() {
        let mut c = FifoCache::new(10);
        c.put(q("a"), results(2), true);
        assert!(c.lookup(&q("a"), 100).is_some());
    }

    #[test]
    fn partial_entry_serves_only_covered_thresholds() {
        let mut c = FifoCache::new(10);
        c.put(q("a"), results(5), false);
        assert!(c.lookup(&q("a"), 5).is_some());
        assert!(c.lookup(&q("a"), 3).is_some());
        assert!(
            c.lookup(&q("a"), 6).is_none(),
            "partial entry cannot answer a larger threshold"
        );
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn exhaustive_entry_not_replaced_by_partial() {
        let mut c = FifoCache::new(10);
        c.put(q("a"), results(3), true);
        c.put(q("a"), results(1), false);
        let entry = c.lookup(&q("a"), 3).expect("kept the exhaustive entry");
        assert_eq!(entry.results.len(), 3);
        assert!(entry.exhausted);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut c = FifoCache::new(2);
        c.put(q("a"), results(2), true);
        c.put(q("b"), results(2), true);
        // Inserting c must evict a (oldest), not b.
        c.put(q("c"), results(2), true);
        assert!(c.lookup(&q("a"), 1).is_none());
        assert!(c.lookup(&q("b"), 1).is_some());
        assert!(c.lookup(&q("c"), 1).is_some());
        assert_eq!(c.held(), 2);
    }

    #[test]
    fn large_result_sets_fit_one_slot() {
        // Per-query slot accounting: even a huge result list costs one
        // slot (see the module docs for the Figure 9 rationale).
        let mut c = FifoCache::new(1);
        c.put(q("big"), results(5_000), true);
        assert_eq!(
            c.lookup(&q("big"), 5_000).map(|e| e.results.len()),
            Some(5_000)
        );
        assert_eq!(c.held(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = FifoCache::new(0);
        c.put(q("a"), results(1), true);
        assert!(c.lookup(&q("a"), 1).is_none());
    }

    #[test]
    fn empty_results_still_occupy_a_slot() {
        let mut c = FifoCache::new(2);
        c.put(q("a"), results(0), true);
        c.put(q("b"), results(0), true);
        assert_eq!(c.held(), 2);
        c.put(q("c"), results(0), true);
        assert!(c.lookup(&q("a"), 1).is_none(), "oldest evicted");
        assert!(c.lookup(&q("c"), 1).is_some());
    }

    #[test]
    fn reinserting_refreshes_position() {
        let mut c = FifoCache::new(2);
        c.put(q("a"), results(1), true);
        c.put(q("b"), results(1), true);
        c.put(q("a"), results(2), true); // refresh a, now newest
        c.put(q("x"), results(2), true); // must evict b (oldest), not a
        assert!(c.lookup(&q("b"), 1).is_none());
        assert_eq!(c.lookup(&q("a"), 1).map(|e| e.results.len()), Some(2));
    }

    #[test]
    fn lookups_do_not_refresh_fifo_position() {
        // "A simple FIFO scheme": eviction order is insertion order,
        // not recency — a hit on the oldest entry must not save it.
        let mut c = FifoCache::new(2);
        c.put(q("a"), results(1), true);
        c.put(q("b"), results(1), true);
        assert!(c.lookup(&q("a"), 1).is_some(), "a is hot");
        c.put(q("x"), results(1), true); // evicts a (oldest) despite the hit
        assert!(c.lookup(&q("a"), 1).is_none(), "FIFO ignores recency");
        assert!(c.lookup(&q("b"), 1).is_some());
        assert!(c.lookup(&q("x"), 1).is_some());
    }

    #[test]
    fn non_covering_miss_keeps_the_entry_and_accounting() {
        // A partial entry missing on a larger threshold is *kept* (it
        // still answers smaller thresholds) and the slot accounting must
        // not drift.
        let mut c = FifoCache::new(4);
        c.put(q("a"), results(3), false);
        assert!(c.lookup(&q("a"), 10).is_none());
        assert_eq!(c.held(), 1, "non-covering entry stays cached");
        assert!(c.lookup(&q("a"), 2).is_some(), "still serves covered t");
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn with_alpha_sizing_matches_paper() {
        // r = 10, 131180 objects → avg index ≈ 128; α = 1/6 → 21.
        let c = FifoCache::with_alpha(1.0 / 6.0, 131_180, 10);
        assert_eq!(c.capacity(), 21);
        // r = 12 → avg ≈ 32; α = 1 → 32.
        let c = FifoCache::with_alpha(1.0, 131_180, 12);
        assert_eq!(c.capacity(), 32);
    }

    #[test]
    fn stale_entry_after_handoff_is_a_miss() {
        // The stale-hit bug this generation counter fixes: a query is
        // cached while vertex v is owned by node A; v's postings are
        // then handed off to node B (which may since have absorbed
        // inserts/deletes the cache never saw). Before the fix, the old
        // entry kept serving — silently wrong results. After a
        // generation bump, the entry must read as a miss and be dropped.
        let mut c = FifoCache::new(10);
        c.put(q("a"), results(3), true);
        assert!(c.lookup(&q("a"), 3).is_some(), "fresh entry hits");

        c.bump_generation(); // ownership of the vertex moved
        assert_eq!(c.generation(), 1);
        assert!(
            c.lookup(&q("a"), 3).is_none(),
            "pre-handoff entry must not serve"
        );
        assert_eq!(c.held(), 0, "stale entry dropped on lookup");
        assert_eq!(c.misses(), 1);

        // Re-caching under the new generation works normally.
        c.put(q("a"), results(2), true);
        assert_eq!(c.lookup(&q("a"), 2).map(|e| e.results.len()), Some(2));
    }

    #[test]
    fn stale_exhaustive_entry_is_replaced_by_fresh_partial() {
        // The keep-exhaustive rule must not protect a stale entry: after
        // a handoff, a fresh partial result beats an outdated exhaustive
        // one.
        let mut c = FifoCache::new(10);
        c.put(q("a"), results(5), true);
        c.bump_generation();
        c.put(q("a"), results(2), false);
        let entry = c.lookup(&q("a"), 2).expect("fresh partial entry");
        assert_eq!(entry.results.len(), 2);
        assert!(!entry.exhausted);
    }

    #[test]
    fn bump_generation_invalidates_all_entries_lazily() {
        let mut c = FifoCache::new(10);
        c.put(q("a"), results(1), true);
        c.put(q("b"), results(1), true);
        c.bump_generation();
        assert_eq!(c.held(), 2, "invalidation is lazy");
        assert!(c.lookup(&q("a"), 1).is_none());
        assert!(c.lookup(&q("b"), 1).is_none());
        assert_eq!(c.held(), 0, "both dropped once touched");
    }

    #[test]
    fn clear_preserves_stats() {
        let mut c = FifoCache::new(4);
        c.put(q("a"), results(1), true);
        c.lookup(&q("a"), 1);
        c.clear();
        assert!(c.lookup(&q("a"), 1).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.held(), 0);
    }
}
