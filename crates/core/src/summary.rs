//! Occupancy summaries for SBT subtree pruning (DESIGN.md §10).
//!
//! The superset search of §3.3 walks the whole spanning binomial tree of
//! the induced subcube even when most vertices index nothing. This
//! module maintains a digest per *prefix region* `(level j, prefix p)` —
//! the vertex set `{x : x >> j == p}` — holding the number of object
//! entries indexed inside the region and the OR of the occupied
//! vertices' bit patterns (the union of keyword positions present).
//!
//! Why prefix regions: in any SBT, the subtree hanging off a child
//! reached across dimension `j` only varies dimensions strictly below
//! `j`, so the whole subtree lives inside the region
//! [`hyperdex_hypercube::sbt::subtree_region`]`(child, j)`. One digest
//! table therefore serves *every* query root at once, and an insert at
//! vertex `w` touches exactly the `r + 1` digests on `w`'s ancestor
//! chain ([`hyperdex_hypercube::sbt::summary_path`]) — O(r) updates,
//! independent of how many queries might later consult them.
//!
//! Pruning is a recall-safe over-approximation: a region digest counts
//! *at least* everything in the corresponding subtree, so a zero count
//! (or a position mask missing a required query bit) proves the subtree
//! holds no match. A stale, over-counted digest merely costs an extra
//! visit; it can never hide a result.

use std::collections::HashMap;

use hyperdex_hypercube::sbt::{subtree_region, summary_path};
use hyperdex_hypercube::Vertex;

/// Digest of one prefix region of the cube.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtreeDigest {
    /// Number of `(keyword set, object)` entries indexed at vertices
    /// inside the region.
    pub object_count: u64,
    /// OR of the occupied vertices' bit patterns — the union of keyword
    /// positions present anywhere in the region.
    pub position_mask: u64,
}

/// Incrementally maintained occupancy digests for every prefix region
/// of an `r`-dimensional hypercube index.
///
/// Only regions with at least one entry are materialized; an absent
/// region is an exact zero. [`OccupancySummary::record_insert`] and
/// [`OccupancySummary::record_remove`] keep the digests exact in O(r);
/// [`OccupancySummary::refresh_leaf`] installs full leaf state (used by
/// the message-level protocol's `T_SUMMARY` refreshes, which tolerate
/// loss by leaving digests safely over-counted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancySummary {
    r: u8,
    regions: HashMap<(u8, u64), SubtreeDigest>,
}

impl OccupancySummary {
    /// An empty summary for an `r`-dimensional cube (`1 ..= 63`).
    pub fn new(r: u8) -> Self {
        debug_assert!((1..=63).contains(&r), "dimension out of range: {r}");
        OccupancySummary {
            r,
            regions: HashMap::new(),
        }
    }

    /// The cube dimension this summary covers.
    pub const fn r(&self) -> u8 {
        self.r
    }

    /// Number of materialized (non-empty) region digests.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total object entries indexed anywhere in the cube.
    pub fn total_objects(&self) -> u64 {
        self.digest(self.r, 0).object_count
    }

    /// The digest of region `(level, prefix)`; absent regions read as
    /// the zero digest.
    pub fn digest(&self, level: u8, prefix: u64) -> SubtreeDigest {
        self.regions
            .get(&(level, prefix))
            .copied()
            .unwrap_or_default()
    }

    /// Object entries recorded at the single vertex `bits`.
    pub fn leaf_count(&self, bits: u64) -> u64 {
        self.digest(0, bits).object_count
    }

    /// Records one new object entry indexed at vertex `bits`: bubbles a
    /// `+1` delta up the ancestor chain of regions. O(r).
    pub fn record_insert(&mut self, bits: u64) {
        for key in summary_path(bits, self.r) {
            let digest = self.regions.entry(key).or_default();
            digest.object_count += 1;
            digest.position_mask |= bits;
        }
    }

    /// Records the removal of one object entry indexed at vertex `bits`:
    /// decrements counts up the ancestor chain, then recomputes the
    /// position masks bottom-up along the same path (a removal can clear
    /// bits, which OR-only deltas cannot express). O(r).
    ///
    /// Removing from an empty leaf is ignored (the summary can only be
    /// over-counted by design, never driven negative).
    pub fn record_remove(&mut self, bits: u64) {
        if self.leaf_count(bits) == 0 {
            return;
        }
        for key in summary_path(bits, self.r) {
            if let Some(digest) = self.regions.get_mut(&key) {
                digest.object_count = digest.object_count.saturating_sub(1);
            }
        }
        self.repair_path(bits);
    }

    /// Installs the exact entry count for leaf `bits`, propagating the
    /// count delta up the ancestor chain and recomputing masks. This is
    /// the full-state form carried by `T_SUMMARY` refreshes: idempotent,
    /// so replayed or reordered refreshes converge, and a lost refresh
    /// merely leaves ancestors safely over-counted.
    pub fn refresh_leaf(&mut self, bits: u64, count: u64) {
        let old = self.leaf_count(bits);
        if count > 0 {
            let leaf = self.regions.entry((0, bits)).or_default();
            leaf.object_count = count;
            leaf.position_mask = bits;
        } else {
            self.regions.remove(&(0, bits));
        }
        for key in summary_path(bits, self.r).skip(1) {
            let digest = self.regions.entry(key).or_default();
            digest.object_count = digest.object_count.saturating_sub(old) + count;
        }
        self.repair_path(bits);
    }

    /// Whether the subtree of `child_bits` (reached across `via_dim`)
    /// provably holds no entry whose keyword positions cover
    /// `required_mask` — i.e. whether a superset search rooted at a
    /// vertex with bit pattern `required_mask` may skip it.
    ///
    /// True when the covering region is empty, or when its position mask
    /// is missing one of the required positions (every match `K' ⊇ K`
    /// lives at a vertex `x ⊇ F_h(K)`).
    pub fn can_prune(&self, child_bits: u64, via_dim: u8, required_mask: u64) -> bool {
        let (level, prefix) = subtree_region(child_bits, via_dim);
        let digest = self.digest(level, prefix);
        digest.object_count == 0 || digest.position_mask & required_mask != required_mask
    }

    /// Recomputes position masks bottom-up along the ancestor chain of
    /// `bits` and drops regions whose count reached zero.
    fn repair_path(&mut self, bits: u64) {
        if let Some(leaf) = self.regions.get_mut(&(0, bits)) {
            if leaf.object_count == 0 {
                self.regions.remove(&(0, bits));
            } else {
                leaf.position_mask = bits;
            }
        }
        for (level, prefix) in summary_path(bits, self.r).skip(1) {
            let Some(count) = self.regions.get(&(level, prefix)).map(|d| d.object_count) else {
                continue;
            };
            if count == 0 {
                self.regions.remove(&(level, prefix));
                continue;
            }
            let left = self.digest(level - 1, prefix << 1).position_mask;
            let right = self.digest(level - 1, (prefix << 1) | 1).position_mask;
            if let Some(digest) = self.regions.get_mut(&(level, prefix)) {
                digest.position_mask = left | right;
            }
        }
    }
}

/// The per-depth node lists of the SBT induced by `root`, with every
/// subtree the summary can disprove pruned away. Returns the levels
/// (level 0 is `[root]`; the root is never pruned) and the number of
/// subtrees pruned. Shared by the logical level traversals and the
/// simulated level-parallel search so both prune identically.
///
/// This is the materialized spelling of
/// [`crate::protocol::FrontierLevels::pruned`] — callers that can
/// consume levels one wave at a time (the search paths do) should
/// stream instead.
pub fn pruned_levels(summary: &OccupancySummary, root: Vertex) -> (Vec<Vec<Vertex>>, u64) {
    let mut frontier = crate::protocol::FrontierLevels::pruned(summary, root);
    let levels: Vec<Vec<Vertex>> = frontier.by_ref().collect();
    (levels, frontier.pruned_subtrees())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force recount of every region digest from a list of
    /// occupied vertices (with multiplicity).
    fn ground_truth(r: u8, entries: &[u64]) -> OccupancySummary {
        let mut truth = OccupancySummary::new(r);
        for &bits in entries {
            truth.record_insert(bits);
        }
        truth
    }

    fn check_against(summary: &OccupancySummary, entries: &[u64]) {
        let r = summary.r();
        for level in 0..=r {
            for prefix in entries.iter().map(|&b| b >> level) {
                let count = entries.iter().filter(|&&b| b >> level == prefix).count() as u64;
                let mask = entries
                    .iter()
                    .filter(|&&b| b >> level == prefix)
                    .fold(0u64, |m, &b| m | b);
                assert_eq!(
                    summary.digest(level, prefix),
                    SubtreeDigest {
                        object_count: count,
                        position_mask: mask,
                    },
                    "region ({level}, {prefix:#b})"
                );
            }
        }
        assert_eq!(summary.total_objects(), entries.len() as u64);
    }

    #[test]
    fn insert_updates_whole_ancestor_chain() {
        let mut s = OccupancySummary::new(4);
        s.record_insert(0b1010);
        for (level, prefix) in summary_path(0b1010, 4) {
            assert_eq!(s.digest(level, prefix).object_count, 1);
            assert_eq!(s.digest(level, prefix).position_mask, 0b1010);
        }
        assert_eq!(s.digest(0, 0b1011).object_count, 0, "sibling untouched");
        assert_eq!(s.region_count(), 5);
    }

    #[test]
    fn remove_restores_empty_summary() {
        let mut s = OccupancySummary::new(5);
        s.record_insert(0b10100);
        s.record_insert(0b10100);
        s.record_remove(0b10100);
        assert_eq!(s.leaf_count(0b10100), 1);
        s.record_remove(0b10100);
        assert_eq!(s.region_count(), 0, "empty regions are dropped");
        assert_eq!(s.total_objects(), 0);
    }

    #[test]
    fn remove_recomputes_masks_from_siblings() {
        let mut s = OccupancySummary::new(3);
        s.record_insert(0b110);
        s.record_insert(0b101);
        // Region (3, 0) sees both patterns.
        assert_eq!(s.digest(3, 0).position_mask, 0b111);
        s.record_remove(0b110);
        // The OR must shrink back to the surviving vertex's pattern.
        assert_eq!(s.digest(3, 0).position_mask, 0b101);
        assert_eq!(s.digest(1, 0b10).position_mask, 0b101);
    }

    #[test]
    fn remove_from_empty_leaf_is_ignored() {
        let mut s = OccupancySummary::new(4);
        s.record_insert(0b0001);
        s.record_remove(0b0010);
        assert_eq!(s.total_objects(), 1);
        check_against(&s, &[0b0001]);
    }

    #[test]
    fn refresh_leaf_is_idempotent_and_exact() {
        let mut s = OccupancySummary::new(4);
        s.record_insert(0b0011);
        s.record_insert(0b0011);
        s.record_insert(0b1100);
        // Model a crash losing vertex 0b0011's table: truth drops, the
        // summary stays over-counted until a refresh lands.
        assert_eq!(s.digest(4, 0).object_count, 3);
        s.refresh_leaf(0b0011, 0);
        s.refresh_leaf(0b0011, 0); // replayed refresh converges
        check_against(&s, &[0b1100]);
        // Repair restores one entry, then the full pair.
        s.refresh_leaf(0b0011, 2);
        check_against(&s, &[0b0011, 0b0011, 0b1100]);
    }

    #[test]
    fn can_prune_empty_and_uncoverable_regions() {
        let mut s = OccupancySummary::new(4);
        // One entry at 0b0110.
        s.record_insert(0b0110);
        // Query root 0b0010 considers child 0b0110 via dim 2: region
        // (2, 0b01) holds the entry and covers bit 1 → must visit.
        assert!(!s.can_prune(0b0110, 2, 0b0010));
        // Child 0b1010 via dim 3: region (3, 0b1) is empty → prune.
        assert!(s.can_prune(0b1010, 3, 0b0010));
        // Query root 0b0001 considers child 0b0101 via dim 2: region
        // (2, 0b01) is occupied but its mask 0b0110 misses bit 0 → prune.
        assert!(s.can_prune(0b0101, 2, 0b0001));
    }

    #[test]
    fn pruned_levels_drop_only_disprovable_subtrees() {
        use hyperdex_hypercube::{Shape, Vertex};
        let shape = Shape::new(4).unwrap();
        let mut s = OccupancySummary::new(4);
        s.record_insert(0b0101);
        s.record_insert(0b0111);
        let root = Vertex::from_bits(shape, 0b0001).unwrap();
        let (levels, pruned) = pruned_levels(&s, root);
        let visited: Vec<u64> = levels.iter().flatten().map(|v| v.bits()).collect();
        // Both occupied superset vertices must still be visited.
        assert!(visited.contains(&0b0101));
        assert!(visited.contains(&0b0111));
        assert!(pruned > 0, "empty subtrees were pruned");
        // Fewer nodes than the full 8-vertex subcube.
        assert!(visited.len() < 8);
    }

    proptest! {
        /// Summaries equal ground-truth subtree occupancy after
        /// arbitrary interleaved insert/delete sequences.
        #[test]
        fn matches_ground_truth_after_any_sequence(
            ops in prop::collection::vec((0u64..32, any::<bool>()), 0..64)
        ) {
            let r = 5;
            let mut summary = OccupancySummary::new(r);
            let mut live: Vec<u64> = Vec::new();
            for (bits, insert) in ops {
                if insert {
                    summary.record_insert(bits);
                    live.push(bits);
                } else if let Some(pos) = live.iter().position(|&b| b == bits) {
                    summary.record_remove(bits);
                    live.remove(pos);
                } else {
                    summary.record_remove(bits); // no-op on empty leaf
                }
            }
            check_against(&summary, &live);
            prop_assert_eq!(summary, ground_truth(r, &live));
        }

        /// `can_prune` never disproves a region that actually contains a
        /// matching vertex (recall safety of the over-approximation).
        #[test]
        fn never_prunes_a_populated_matching_region(
            entries in prop::collection::vec(0u64..64, 1..24),
            required in 0u64..64,
            via in 0u8..6,
        ) {
            let summary = ground_truth(6, &entries);
            for &bits in &entries {
                if bits & required == required {
                    // `bits` matches and lies in region (via, bits >> via);
                    // pruning any child whose region contains it is wrong.
                    prop_assert!(
                        !summary.can_prune(bits, via, required),
                        "pruned region holding matching vertex {bits:#b}"
                    );
                }
            }
        }
    }
}
