//! The logical hypercube index — the paper's measurement substrate.
//!
//! [`HypercubeIndex`] materializes the index scheme over the *logical*
//! hypercube: every vertex is its own index node, exactly as in the
//! paper's experiments (§4), so "nodes contacted" counts hypercube
//! vertices. The DHT-backed deployment ([`crate::service`]) maps these
//! vertices onto ring nodes via `g` but reuses this same structure and
//! protocol.
//!
//! Vertices are materialized lazily: a 2^16-vertex hypercube costs
//! memory only for vertices that actually index objects (or hold a
//! cache).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use hyperdex_dht::ObjectId;
use hyperdex_hypercube::{Shape, Vertex};

use crate::cache::FifoCache;
use crate::error::Error;
use crate::hashing::KeywordHasher;
use crate::keyword::KeywordSet;
use crate::search::{
    superset, PinOutcome, RankedObject, SearchStats, SupersetOutcome, SupersetQuery,
};
use crate::store::{PostingStore, StoreBackend, StoreFootprint};
use crate::summary::OccupancySummary;

/// One logical index node: its posting store plus an optional result
/// cache.
#[derive(Debug, Clone)]
pub(crate) struct IndexNode {
    pub(crate) store: PostingStore,
    pub(crate) cache: Option<FifoCache>,
}

/// Reusable traversal buffers, owned by the index and lent to the
/// search engine for the duration of one query — superset searches
/// stop allocating a fresh frontier queue and per-node result buffer
/// per call.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchScratch {
    /// The sequential protocol's frontier queue `U`.
    pub(crate) frontier: VecDeque<(Vertex, u8)>,
    /// Per-node found buffer (sorted locally, then drained).
    pub(crate) found: Vec<RankedObject>,
}

/// The hypercube keyword index over a logical `r`-dimensional hypercube.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct HypercubeIndex {
    hasher: KeywordHasher,
    nodes: HashMap<u64, IndexNode>,
    object_count: usize,
    cache_capacity: usize,
    // Posting layout for every materialized vertex (DESIGN.md §17).
    backend: StoreBackend,
    // Occupancy digests over prefix regions, kept exact on every
    // insert/remove so searches can prune provably-empty SBT subtrees.
    summary: OccupancySummary,
    // Reused traversal buffers (see SearchScratch).
    scratch: SearchScratch,
}

impl HypercubeIndex {
    /// Creates an index over an `r`-dimensional hypercube with hash
    /// seed `seed`, caches disabled, and the posting backend read from
    /// `HYPERDEX_STORE` (default `table`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn new(r: u8, seed: u64) -> Result<Self, Error> {
        Self::with_store(r, seed, StoreBackend::from_env())
    }

    /// [`HypercubeIndex::new`] with an explicit posting backend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn with_store(r: u8, seed: u64, backend: StoreBackend) -> Result<Self, Error> {
        Ok(HypercubeIndex {
            hasher: KeywordHasher::new(r, seed)?,
            nodes: HashMap::new(),
            object_count: 0,
            cache_capacity: 0,
            backend,
            summary: OccupancySummary::new(r),
            scratch: SearchScratch::default(),
        })
    }

    /// The posting backend every materialized vertex uses.
    pub fn store_backend(&self) -> StoreBackend {
        self.backend
    }

    /// Aggregate memory footprint of every materialized posting store
    /// (see [`StoreFootprint`]).
    pub fn store_footprint(&self) -> StoreFootprint {
        let mut total = StoreFootprint::zero();
        for node in self.nodes.values() {
            total.add(&node.store.footprint());
        }
        total
    }

    /// Enables a per-node FIFO cache of `capacity` object entries
    /// (0 disables). Existing caches are resized lazily on next use.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache_capacity = capacity;
        for node in self.nodes.values_mut() {
            node.cache = (capacity > 0).then(|| FifoCache::new(capacity));
        }
    }

    /// Enables caches via the paper's `α` rule: capacity
    /// `= α · |O| / 2^r` object entries per node.
    pub fn set_cache_alpha(&mut self, alpha: f64) {
        let avg = self.object_count as f64 / self.shape().vertex_count() as f64;
        self.set_cache_capacity((alpha * avg).floor() as usize);
    }

    /// The hypercube shape.
    pub fn shape(&self) -> Shape {
        self.hasher.shape()
    }

    /// The keyword hasher (shared with the DHT service and baselines).
    pub fn hasher(&self) -> KeywordHasher {
        self.hasher
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.object_count
    }

    /// Whether no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.object_count == 0
    }

    /// The vertex responsible for a keyword set — `F_h(K)`.
    pub fn vertex_for(&self, keywords: &KeywordSet) -> Vertex {
        self.hasher.vertex_for(keywords)
    }

    /// Indexes `object` under `keywords` at the single vertex
    /// `F_h(keywords)`, returning that vertex.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] for an empty keyword set.
    pub fn insert(&mut self, object: ObjectId, keywords: KeywordSet) -> Result<Vertex, Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        let vertex = self.vertex_for(&keywords);
        let node = self.node_mut(vertex);
        if node.store.insert(keywords, object) {
            self.object_count += 1;
            self.summary.record_insert(vertex.bits());
        }
        Ok(vertex)
    }

    /// [`HypercubeIndex::insert`] for an already-interned keyword set —
    /// replication layers intern once through a [`KeywordInterner`] and
    /// index the same `Arc` into every replica cube.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] for an empty keyword set.
    pub fn insert_arc(
        &mut self,
        object: ObjectId,
        keywords: Arc<KeywordSet>,
    ) -> Result<Vertex, Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        let vertex = self.vertex_for(&keywords);
        let node = self.node_mut(vertex);
        if node.store.insert_arc(keywords, object) {
            self.object_count += 1;
            self.summary.record_insert(vertex.bits());
        }
        Ok(vertex)
    }

    /// Removes the entry `⟨keywords, object⟩`. Returns `true` if it was
    /// present. Exactly one node is touched (§3.4: delete is one
    /// lookup).
    pub fn remove(&mut self, object: ObjectId, keywords: &KeywordSet) -> bool {
        let vertex = self.vertex_for(keywords);
        let Some(node) = self.nodes.get_mut(&vertex.bits()) else {
            return false;
        };
        let removed = node.store.remove(keywords, object);
        if removed {
            self.object_count -= 1;
            self.summary.record_remove(vertex.bits());
        }
        removed
    }

    /// Pin search: the objects indexed under *exactly* `keywords` — one
    /// query message to one node, one reply (§3.5).
    pub fn pin_search(&self, keywords: &KeywordSet) -> PinOutcome {
        let vertex = self.vertex_for(keywords);
        let results: Vec<ObjectId> = self
            .nodes
            .get(&vertex.bits())
            .map(|n| n.store.objects_with(keywords).collect())
            .unwrap_or_default();
        let stats = SearchStats {
            nodes_contacted: 1,
            query_messages: 1,
            result_messages: 1,
            entries_scanned: results.len() as u64,
            ..Default::default()
        };
        PinOutcome { results, stats }
    }

    /// Superset search per §3.3's protocol. See [`SupersetQuery`] for
    /// the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] for a zero threshold.
    pub fn superset_search(&mut self, query: &SupersetQuery) -> Result<SupersetOutcome, Error> {
        superset::run(self, query)
    }

    /// Ground truth `|O_K|`: how many indexed objects `keywords`
    /// describes. Used by the experiments to convert recall rates into
    /// thresholds. (Centralized oracle — not part of the protocol.)
    pub fn matching_count(&self, keywords: &KeywordSet) -> usize {
        let root = self.vertex_for(keywords);
        self.nodes
            .iter()
            .filter(|(bits, _)| {
                Vertex::from_bits(self.shape(), **bits)
                    .expect("stored vertices are valid")
                    .contains(root)
            })
            .map(|(_, node)| {
                node.store
                    .superset_entries(keywords)
                    .map(|(_, objs)| objs.count())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Per-vertex storage load (object entries), for every vertex that
    /// indexes at least one object — the input to Figure 6.
    pub fn node_loads(&self) -> Vec<(Vertex, usize)> {
        let shape = self.shape();
        self.nodes
            .iter()
            .filter(|(_, n)| !n.store.is_empty())
            .map(|(bits, n)| {
                (
                    Vertex::from_bits(shape, *bits).expect("valid"),
                    n.store.object_count(),
                )
            })
            .collect()
    }

    /// Number of vertices currently materialized (for memory tests).
    pub fn materialized_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Simulates the crash of one index node: its table (and cache) are
    /// lost. Returns the number of object entries that disappeared.
    ///
    /// Queries keep working — the vertex simply answers empty — but its
    /// objects become unfindable until re-published, unless a
    /// replication layer (see [`crate::replication`]) covers them.
    pub fn drop_node(&mut self, vertex: Vertex) -> usize {
        match self.nodes.remove(&vertex.bits()) {
            None => 0,
            Some(node) => {
                let lost = node.store.object_count();
                self.object_count -= lost;
                self.summary.refresh_leaf(vertex.bits(), 0);
                lost
            }
        }
    }

    /// The occupancy summary over the cube's prefix regions — what the
    /// search variants consult to prune empty SBT subtrees.
    pub fn summary(&self) -> &OccupancySummary {
        &self.summary
    }

    // ---- crate-internal accessors used by the search engine ----

    /// The posting store at `vertex`, if materialized.
    pub(crate) fn store_at(&self, vertex: Vertex) -> Option<&PostingStore> {
        self.nodes.get(&vertex.bits()).map(|n| &n.store)
    }

    /// Mutable node at `vertex`, materializing it (with a cache if
    /// configured).
    pub(crate) fn node_mut(&mut self, vertex: Vertex) -> &mut IndexNode {
        let capacity = self.cache_capacity;
        let backend = self.backend;
        self.nodes
            .entry(vertex.bits())
            .or_insert_with(|| IndexNode {
                store: PostingStore::new(backend),
                cache: (capacity > 0).then(|| FifoCache::new(capacity)),
            })
    }

    /// Mutable cache at `vertex`, if caching is enabled.
    pub(crate) fn cache_mut(&mut self, vertex: Vertex) -> Option<&mut FifoCache> {
        if self.cache_capacity == 0 {
            return None;
        }
        self.node_mut(vertex).cache.as_mut()
    }

    /// Moves the reusable traversal buffers out (the search engine
    /// borrows the index immutably while traversing).
    pub(crate) fn take_scratch(&mut self) -> SearchScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Returns the traversal buffers after a search, keeping their
    /// capacity for the next query.
    pub(crate) fn put_scratch(&mut self, scratch: SearchScratch) {
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::KeywordInterner;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn insert_is_single_vertex() {
        let mut idx = HypercubeIndex::new(10, 0).unwrap();
        let v = idx.insert(oid(1), set("a b c")).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.materialized_nodes(), 1);
        assert_eq!(v, idx.vertex_for(&set("a b c")));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = HypercubeIndex::new(8, 0).unwrap();
        idx.insert(oid(1), set("x")).unwrap();
        idx.insert(oid(1), set("x")).unwrap();
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn empty_keyword_set_rejected() {
        let mut idx = HypercubeIndex::new(8, 0).unwrap();
        assert_eq!(
            idx.insert(oid(1), KeywordSet::new()),
            Err(Error::EmptyKeywordSet)
        );
    }

    #[test]
    fn pin_search_exact_only() {
        let mut idx = HypercubeIndex::new(10, 0).unwrap();
        idx.insert(oid(1), set("a b")).unwrap();
        idx.insert(oid(2), set("a b c")).unwrap();
        let out = idx.pin_search(&set("a b"));
        assert_eq!(out.results, vec![oid(1)]);
        assert_eq!(out.stats.nodes_contacted, 1);
        assert!(idx.pin_search(&set("a")).results.is_empty());
    }

    #[test]
    fn remove_roundtrip() {
        let mut idx = HypercubeIndex::new(10, 0).unwrap();
        idx.insert(oid(1), set("m n")).unwrap();
        assert!(idx.remove(oid(1), &set("m n")));
        assert!(!idx.remove(oid(1), &set("m n")));
        assert!(idx.is_empty());
        assert!(idx.pin_search(&set("m n")).results.is_empty());
    }

    #[test]
    fn matching_count_ground_truth() {
        let mut idx = HypercubeIndex::new(10, 0).unwrap();
        idx.insert(oid(1), set("a")).unwrap();
        idx.insert(oid(2), set("a b")).unwrap();
        idx.insert(oid(3), set("a b c")).unwrap();
        idx.insert(oid(4), set("z")).unwrap();
        assert_eq!(idx.matching_count(&set("a")), 3);
        assert_eq!(idx.matching_count(&set("a b")), 2);
        assert_eq!(idx.matching_count(&set("q")), 0);
    }

    #[test]
    fn node_loads_reflect_storage() {
        let mut idx = HypercubeIndex::new(10, 0).unwrap();
        idx.insert(oid(1), set("a")).unwrap();
        idx.insert(oid(2), set("a")).unwrap();
        idx.insert(oid(3), set("b c d")).unwrap();
        let loads = idx.node_loads();
        let total: usize = loads.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 3);
        assert!(loads.iter().any(|&(_, l)| l == 2));
    }

    #[test]
    fn cache_capacity_toggles() {
        let mut idx = HypercubeIndex::new(8, 0).unwrap();
        idx.insert(oid(1), set("k")).unwrap();
        let v = idx.vertex_for(&set("k"));
        assert!(idx.cache_mut(v).is_none());
        idx.set_cache_capacity(16);
        assert!(idx.cache_mut(v).is_some());
        idx.set_cache_capacity(0);
        assert!(idx.cache_mut(v).is_none());
    }

    #[test]
    fn summary_tracks_inserts_removes_and_drops() {
        let mut idx = HypercubeIndex::new(10, 0).unwrap();
        idx.insert(oid(1), set("a b")).unwrap();
        idx.insert(oid(2), set("a b")).unwrap();
        let v = idx.insert(oid(3), set("c d e")).unwrap();
        assert_eq!(idx.summary().total_objects(), 3);
        assert_eq!(idx.summary().leaf_count(v.bits()), 1);
        idx.remove(oid(1), &set("a b"));
        assert_eq!(idx.summary().total_objects(), 2);
        idx.drop_node(v);
        assert_eq!(idx.summary().total_objects(), 1);
        assert_eq!(idx.summary().leaf_count(v.bits()), 0);
    }

    #[test]
    fn insert_arc_matches_insert() {
        let mut a = HypercubeIndex::new(10, 0).unwrap();
        let mut b = HypercubeIndex::new(10, 0).unwrap();
        let mut pool = KeywordInterner::new();
        a.insert(oid(1), set("a b")).unwrap();
        b.insert_arc(oid(1), pool.intern(set("a b"))).unwrap();
        assert_eq!(
            a.pin_search(&set("a b")).results,
            b.pin_search(&set("a b")).results
        );
        assert_eq!(
            b.insert_arc(oid(2), pool.intern(KeywordSet::new())),
            Err(Error::EmptyKeywordSet)
        );
    }

    #[test]
    fn cache_alpha_rule() {
        let mut idx = HypercubeIndex::new(4, 0).unwrap();
        for i in 0..64 {
            idx.insert(oid(i), set(&format!("w{i}"))).unwrap();
        }
        // 64 objects / 16 vertices = 4 avg; α = 0.5 → capacity 2.
        idx.set_cache_alpha(0.5);
        let v = idx.vertex_for(&set("w0"));
        assert_eq!(idx.cache_mut(v).unwrap().capacity(), 2);
    }
}
