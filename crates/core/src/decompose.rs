//! Decomposed hypercube indexes (§3.4, last remark).
//!
//! "Instead of using a single large hypercube to index objects, we can
//! divide the entire keyword set into smaller, disjoint subsets, and
//! then use a hypercube for each subset … A large index vector results
//! in a large dimension of indexing hypercube, which in turn increases
//! search complexity. Decomposing keyword sets therefore increases
//! search performance."
//!
//! [`DecomposedIndex`] keys each sub-hypercube by a *field* name (e.g.
//! `"os"`, `"cpu"`, `"service"`), which is the natural decomposition for
//! attribute-style metadata: searches name a field, so they run in that
//! field's (small) hypercube instead of one large one.

use std::collections::BTreeMap;

use hyperdex_dht::ObjectId;

use crate::cluster::HypercubeIndex;
use crate::error::Error;
use crate::keyword::KeywordSet;
use crate::search::{PinOutcome, SupersetOutcome, SupersetQuery};

/// A family of per-field hypercube indexes sharing one object space.
///
/// # Example
///
/// ```
/// use hyperdex_core::decompose::DecomposedIndex;
/// use hyperdex_core::{KeywordSet, ObjectId, SupersetQuery};
///
/// let mut idx = DecomposedIndex::new(0);
/// idx.add_field("os", 6)?;
/// idx.add_field("service", 8)?;
/// let host = ObjectId::from_raw(1);
/// idx.insert("os", host, KeywordSet::parse("linux x86-64")?)?;
/// idx.insert("service", host, KeywordSet::parse("http tls")?)?;
///
/// let out = idx.superset_search(
///     "os",
///     &SupersetQuery::new(KeywordSet::parse("linux")?).threshold(5),
/// )?;
/// assert_eq!(out.results[0].object, host);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecomposedIndex {
    seed: u64,
    fields: BTreeMap<String, HypercubeIndex>,
}

impl DecomposedIndex {
    /// Creates an empty decomposed index with a base hash seed.
    pub fn new(seed: u64) -> Self {
        DecomposedIndex {
            seed,
            fields: BTreeMap::new(),
        }
    }

    /// Registers a field with its own `r`-dimensional hypercube.
    /// Re-registering an existing field replaces its (empty or not)
    /// hypercube.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] for an invalid `r`.
    pub fn add_field(&mut self, field: &str, r: u8) -> Result<(), Error> {
        // Derive a per-field seed so equal keywords in different fields
        // hash independently.
        let field_seed =
            self.seed ^ hyperdex_dht::keyhash::stable_hash64_seeded(field.as_bytes(), 0x4649_454C);
        self.fields
            .insert(field.to_owned(), HypercubeIndex::new(r, field_seed)?);
        Ok(())
    }

    /// The registered field names, sorted.
    pub fn fields(&self) -> impl Iterator<Item = &str> {
        self.fields.keys().map(String::as_str)
    }

    /// The hypercube index of one field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownField`] for an unregistered field.
    pub fn field(&self, field: &str) -> Result<&HypercubeIndex, Error> {
        self.fields.get(field).ok_or_else(|| Error::UnknownField {
            field: field.to_owned(),
        })
    }

    /// Indexes `object`'s keywords for one field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownField`] or the field index's own errors.
    pub fn insert(
        &mut self,
        field: &str,
        object: ObjectId,
        keywords: KeywordSet,
    ) -> Result<(), Error> {
        self.field_mut(field)?.insert(object, keywords)?;
        Ok(())
    }

    /// Removes `object`'s entry for one field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownField`] for an unregistered field.
    pub fn remove(
        &mut self,
        field: &str,
        object: ObjectId,
        keywords: &KeywordSet,
    ) -> Result<bool, Error> {
        Ok(self.field_mut(field)?.remove(object, keywords))
    }

    /// Pin search within one field's hypercube.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownField`] for an unregistered field.
    pub fn pin_search(&self, field: &str, keywords: &KeywordSet) -> Result<PinOutcome, Error> {
        Ok(self.field(field)?.pin_search(keywords))
    }

    /// Superset search within one field's hypercube.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownField`] or the search's own errors.
    pub fn superset_search(
        &mut self,
        field: &str,
        query: &SupersetQuery,
    ) -> Result<SupersetOutcome, Error> {
        self.field_mut(field)?.superset_search(query)
    }

    /// Conjunctive search across fields: objects matching *every*
    /// per-field query. Stats accumulate across the per-field searches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownField`] or the searches' own errors.
    pub fn multi_field_search(
        &mut self,
        queries: &[(&str, SupersetQuery)],
    ) -> Result<(Vec<ObjectId>, crate::search::SearchStats), Error> {
        let mut intersection: Option<std::collections::BTreeSet<ObjectId>> = None;
        let mut stats = crate::search::SearchStats::default();
        for (field, query) in queries {
            let out = self.superset_search(field, query)?;
            stats.nodes_contacted += out.stats.nodes_contacted;
            stats.query_messages += out.stats.query_messages;
            stats.control_messages += out.stats.control_messages;
            stats.result_messages += out.stats.result_messages;
            stats.entries_scanned += out.stats.entries_scanned;
            let ids: std::collections::BTreeSet<ObjectId> =
                out.results.into_iter().map(|r| r.object).collect();
            intersection = Some(match intersection {
                None => ids,
                Some(acc) => acc.intersection(&ids).copied().collect(),
            });
            if intersection.as_ref().is_some_and(|s| s.is_empty()) {
                break;
            }
        }
        Ok((
            intersection.unwrap_or_default().into_iter().collect(),
            stats,
        ))
    }

    fn field_mut(&mut self, field: &str) -> Result<&mut HypercubeIndex, Error> {
        self.fields
            .get_mut(field)
            .ok_or_else(|| Error::UnknownField {
                field: field.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn unknown_field_errors() {
        let mut idx = DecomposedIndex::new(0);
        assert!(matches!(
            idx.insert("nope", oid(1), set("a")),
            Err(Error::UnknownField { .. })
        ));
        assert!(idx.pin_search("nope", &set("a")).is_err());
    }

    #[test]
    fn fields_are_independent() {
        let mut idx = DecomposedIndex::new(0);
        idx.add_field("os", 6).unwrap();
        idx.add_field("cpu", 6).unwrap();
        idx.insert("os", oid(1), set("linux")).unwrap();
        idx.insert("cpu", oid(2), set("linux")).unwrap(); // same word, other field
        let out = idx.pin_search("os", &set("linux")).unwrap();
        assert_eq!(out.results, vec![oid(1)], "no cross-field leakage");
    }

    #[test]
    fn multi_field_intersection() {
        let mut idx = DecomposedIndex::new(0);
        idx.add_field("os", 6).unwrap();
        idx.add_field("service", 6).unwrap();
        idx.insert("os", oid(1), set("linux x86")).unwrap();
        idx.insert("service", oid(1), set("http")).unwrap();
        idx.insert("os", oid(2), set("linux arm")).unwrap();
        idx.insert("service", oid(2), set("ssh")).unwrap();
        let (hits, stats) = idx
            .multi_field_search(&[
                ("os", SupersetQuery::new(set("linux"))),
                ("service", SupersetQuery::new(set("http"))),
            ])
            .unwrap();
        assert_eq!(hits, vec![oid(1)]);
        assert!(stats.nodes_contacted > 0);
    }

    #[test]
    fn decomposition_shrinks_search_space() {
        // One 12-dim cube vs two 6-dim cubes: a single-field search in
        // the decomposed index contacts at most 2^6 nodes instead of up
        // to 2^12·2^-1.
        let mut mono = HypercubeIndex::new(12, 0).unwrap();
        let mut deco = DecomposedIndex::new(0);
        deco.add_field("a", 6).unwrap();
        for i in 0..200 {
            let k = set(&format!("common tag{i}"));
            mono.insert(oid(i), k.clone()).unwrap();
            deco.insert("a", oid(i), k).unwrap();
        }
        let q = SupersetQuery::new(set("common")).use_cache(false);
        let mono_nodes = mono.superset_search(&q).unwrap().stats.nodes_contacted;
        let deco_nodes = deco.superset_search("a", &q).unwrap().stats.nodes_contacted;
        assert!(
            deco_nodes < mono_nodes,
            "decomposed {deco_nodes} vs monolithic {mono_nodes}"
        );
    }

    #[test]
    fn fields_listing_sorted() {
        let mut idx = DecomposedIndex::new(0);
        idx.add_field("zeta", 4).unwrap();
        idx.add_field("alpha", 4).unwrap();
        assert_eq!(idx.fields().collect::<Vec<_>>(), vec!["alpha", "zeta"]);
    }
}
