//! Result ranking and category sampling (§1).
//!
//! The index scheme distinguishes matches by the number (and identity)
//! of keywords they carry beyond the query: "objects that are associated
//! with exactly the set K, objects associated with K plus one more
//! keyword, and so on; within each category, objects can be further
//! distinguished by which extra keywords they have." No global knowledge
//! (e.g. IDF) is needed — the grouping falls out of the index geometry.

use std::collections::BTreeMap;

use crate::keyword::KeywordSet;
use crate::search::RankedObject;

/// Groups results by their extra-keyword *count* (`0` = exact match).
///
/// The map's natural order is most-general-first; iterate it in reverse
/// for most-specific-first.
pub fn group_by_extra_count(results: &[RankedObject]) -> BTreeMap<u32, Vec<&RankedObject>> {
    let mut groups: BTreeMap<u32, Vec<&RankedObject>> = BTreeMap::new();
    for r in results {
        groups.entry(r.extra_keywords).or_default().push(r);
    }
    groups
}

/// Groups results by their exact extra-keyword *set* relative to the
/// query — the categories `K ∪ {σ₁}`, `K ∪ {σ₂}`, `K ∪ {σ₁, σ₂}`, … of
/// §1's refinement mechanism.
pub fn group_by_extra_set<'a>(
    results: &'a [RankedObject],
    query: &KeywordSet,
) -> BTreeMap<KeywordSet, Vec<&'a RankedObject>> {
    let mut groups: BTreeMap<KeywordSet, Vec<&RankedObject>> = BTreeMap::new();
    for r in results {
        groups
            .entry(r.keyword_set.difference(query))
            .or_default()
            .push(r);
    }
    groups
}

/// A sampled refinement category: an extra-keyword set, the number of
/// matches carrying it, and up to `per_category` example objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategorySample<'a> {
    /// The keywords these objects have beyond the query.
    pub extra: KeywordSet,
    /// Total matches in the category.
    pub total: usize,
    /// Example objects (at most the requested sample size).
    pub examples: Vec<&'a RankedObject>,
}

/// Samples each refinement category, "to help users refine their
/// queries" (§1): categories appear sorted by extra-set size then
/// lexicographically, each carrying up to `per_category` examples.
pub fn sample_categories<'a>(
    results: &'a [RankedObject],
    query: &KeywordSet,
    per_category: usize,
) -> Vec<CategorySample<'a>> {
    let mut samples: Vec<CategorySample<'a>> = group_by_extra_set(results, query)
        .into_iter()
        .map(|(extra, members)| CategorySample {
            extra,
            total: members.len(),
            examples: members.into_iter().take(per_category).collect(),
        })
        .collect();
    samples.sort_by(|a, b| {
        a.extra
            .len()
            .cmp(&b.extra.len())
            .then_with(|| a.extra.cmp(&b.extra))
    });
    samples
}

/// Sorts results most-general-first (fewest extra keywords), stably.
pub fn prefer_general(results: &mut [RankedObject]) {
    results.sort_by_key(|r| r.extra_keywords);
}

/// Sorts results most-specific-first (most extra keywords), stably.
pub fn prefer_specific(results: &mut [RankedObject]) {
    results.sort_by_key(|r| std::cmp::Reverse(r.extra_keywords));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_dht::ObjectId;

    fn ranked(id: u64, keywords: &str, query: &str) -> RankedObject {
        let keyword_set = KeywordSet::parse(keywords).unwrap();
        let q = KeywordSet::parse(query).unwrap();
        let extra_keywords = (keyword_set.len() - q.len()) as u32;
        RankedObject {
            object: ObjectId::from_raw(id),
            keyword_set: std::sync::Arc::new(keyword_set),
            extra_keywords,
        }
    }

    fn sample_results() -> (Vec<RankedObject>, KeywordSet) {
        let query = KeywordSet::parse("jazz").unwrap();
        let results = vec![
            ranked(1, "jazz", "jazz"),
            ranked(2, "jazz piano", "jazz"),
            ranked(3, "jazz piano", "jazz"),
            ranked(4, "jazz sax", "jazz"),
            ranked(5, "jazz piano 1959", "jazz"),
        ];
        (results, query)
    }

    #[test]
    fn group_by_count() {
        let (results, _) = sample_results();
        let groups = group_by_extra_count(&results);
        assert_eq!(groups[&0].len(), 1);
        assert_eq!(groups[&1].len(), 3);
        assert_eq!(groups[&2].len(), 1);
    }

    #[test]
    fn group_by_set_distinguishes_categories() {
        let (results, query) = sample_results();
        let groups = group_by_extra_set(&results, &query);
        assert_eq!(groups.len(), 4, "∅, {{piano}}, {{sax}}, {{piano,1959}}");
        assert_eq!(groups[&KeywordSet::parse("piano").unwrap()].len(), 2);
        assert_eq!(groups[&KeywordSet::new()].len(), 1);
    }

    #[test]
    fn categories_sampled_and_ordered() {
        let (results, query) = sample_results();
        let samples = sample_categories(&results, &query, 1);
        // Order: ∅ (0 extra), then {piano}, {sax} (1 extra, lexicographic),
        // then {1959, piano}.
        assert_eq!(samples[0].extra, KeywordSet::new());
        assert_eq!(samples[1].extra, KeywordSet::parse("piano").unwrap());
        assert_eq!(samples[2].extra, KeywordSet::parse("sax").unwrap());
        assert_eq!(samples[3].extra, KeywordSet::parse("piano 1959").unwrap());
        assert_eq!(samples[1].total, 2);
        assert_eq!(samples[1].examples.len(), 1, "sampled down");
    }

    #[test]
    fn prefer_general_and_specific_are_reverses() {
        let (mut results, _) = sample_results();
        prefer_specific(&mut results);
        assert_eq!(results[0].extra_keywords, 2);
        prefer_general(&mut results);
        assert_eq!(results[0].extra_keywords, 0);
    }

    #[test]
    fn empty_results_empty_groups() {
        let query = KeywordSet::parse("q").unwrap();
        assert!(group_by_extra_count(&[]).is_empty());
        assert!(sample_categories(&[], &query, 3).is_empty());
    }
}
