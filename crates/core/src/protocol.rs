//! Engine-agnostic core of the superset/pin/insert protocol.
//!
//! Three execution substrates run the paper's §3.3 protocol:
//!
//! * the **direct engine** ([`crate::cluster::HypercubeIndex`]) — plain
//!   function calls, exact node/message accounting;
//! * the **simulator** ([`crate::sim_protocol::ProtocolSim`]) — the
//!   same traversal as discrete-event messages with latency and faults;
//! * the **threaded runtime** (`hyperdex-runtime`) — the same traversal
//!   as wire-encoded frames between OS threads.
//!
//! Before this module each substrate re-implemented the coordinator
//! loop (pop the SBT frontier, query one node, fold its answer back
//! in), and the three copies had to be kept in lock-step by parity
//! tests alone. [`SupersetCoordinator`] is the single shared
//! implementation: a sans-I/O state machine that knows *which vertex to
//! visit next* and *how an answer changes the frontier*, while the
//! substrate supplies transport (a call, a simnet message, a wire
//! frame). The SBT child-derivation helpers (Lemma 3.2: a node's
//! subtree is computable from its bits and arrival dimension alone)
//! live here too, as does the per-vertex table scan every substrate
//! performs on a `T_QUERY`.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::Arc;

use hyperdex_dht::ObjectId;
use hyperdex_hypercube::{Sbt, Shape, Vertex};

use crate::index::IndexTable;
use crate::keyword::KeywordSet;
use crate::search::RankedObject;
use crate::store::PostingStore;
use crate::summary::OccupancySummary;

/// What the coordinator wants executed next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Deliver a `T_QUERY` to vertex `bits` (reached via `via_dim`;
    /// `None` marks the traversal root) and report the answer back via
    /// [`SupersetCoordinator::record_visit`].
    Visit {
        /// The vertex to query.
        bits: u64,
        /// The dimension through which the SBT reaches it (`None` for
        /// the root).
        via_dim: Option<u8>,
    },
    /// The traversal is complete: the threshold was met or the induced
    /// subcube is exhausted.
    Finished,
}

/// The root-side coordinator state machine of one sequential superset
/// search (§3.3): the frontier queue `U`, the remaining-result budget
/// `c`, and the termination rule.
///
/// The machine is sans-I/O: call [`SupersetCoordinator::next_step`] to
/// learn the next vertex to query, execute the query however the
/// substrate likes, then feed the answer to
/// [`SupersetCoordinator::record_visit`]. A `T_STOP` (the queried node
/// saw the threshold met) maps to [`SupersetCoordinator::stop`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use hyperdex_core::protocol::{SupersetCoordinator, Step};
/// use hyperdex_core::{KeywordHasher, KeywordSet};
///
/// let hasher = KeywordHasher::new(6, 0)?;
/// let kw = Arc::new(KeywordSet::parse("a")?);
/// let root = hasher.vertex_for(&kw);
/// let mut coord = SupersetCoordinator::new(root, kw, 10);
/// // The first step is always the root itself.
/// assert_eq!(
///     coord.next_step(),
///     Step::Visit { bits: root.bits(), via_dim: None }
/// );
/// coord.record_visit(0, SupersetCoordinator::children_of(root, None));
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug)]
pub struct SupersetCoordinator {
    keywords: Arc<KeywordSet>,
    remaining: usize,
    root_bits: u64,
    frontier: VecDeque<(u64, u8)>,
    root_issued: bool,
    done: bool,
}

impl SupersetCoordinator {
    /// Starts a traversal rooted at `root` wanting up to `threshold`
    /// results.
    pub fn new(root: Vertex, keywords: Arc<KeywordSet>, threshold: usize) -> Self {
        Self::with_queue(root, keywords, threshold, VecDeque::new())
    }

    /// [`SupersetCoordinator::new`] reusing an existing frontier buffer
    /// (cleared first) — hot loops recycle the queue's capacity across
    /// searches instead of reallocating it.
    pub fn with_queue(
        root: Vertex,
        keywords: Arc<KeywordSet>,
        threshold: usize,
        mut frontier: VecDeque<(u64, u8)>,
    ) -> Self {
        frontier.clear();
        SupersetCoordinator {
            keywords,
            remaining: threshold,
            root_bits: root.bits(),
            frontier,
            root_issued: false,
            done: false,
        }
    }

    /// The queried keyword set (shared: every hop of the traversal
    /// holds the same allocation).
    pub fn keywords(&self) -> &Arc<KeywordSet> {
        &self.keywords
    }

    /// Results still wanted (the paper's `c`).
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The traversal root's bits — `One(F_h(K))`, the mask occupancy
    /// pruning tests against.
    pub fn root_bits(&self) -> u64 {
        self.root_bits
    }

    /// Whether the traversal has terminated.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Marks the traversal complete (threshold met, `T_STOP` received,
    /// or the substrate aborts).
    pub fn stop(&mut self) {
        self.done = true;
    }

    /// The next vertex to query: the root first, then the frontier in
    /// FIFO order. Returns [`Step::Finished`] — and latches done — once
    /// the threshold is met or the frontier is exhausted.
    pub fn next_step(&mut self) -> Step {
        if self.done || self.remaining == 0 {
            self.done = true;
            return Step::Finished;
        }
        if !self.root_issued {
            self.root_issued = true;
            return Step::Visit {
                bits: self.root_bits,
                via_dim: None,
            };
        }
        match self.frontier.pop_front() {
            Some((bits, dim)) => Step::Visit {
                bits,
                via_dim: Some(dim),
            },
            None => {
                self.done = true;
                Step::Finished
            }
        }
    }

    /// Drains every currently-issuable visit into `out` — the root
    /// (`None`) if it has not been issued yet, then the whole frontier
    /// in FIFO order — without latching `done`. This is the batched
    /// counterpart of [`SupersetCoordinator::next_step`]: a driver that
    /// dispatches visits concurrently (grouping them by owner) takes
    /// the frontier as one burst and keeps folding replies with
    /// [`SupersetCoordinator::record_visit`] while visits are still
    /// outstanding, whereas `next_step` would misread the momentarily
    /// empty frontier as termination. Emits nothing once the machine
    /// is done or the budget is exhausted.
    pub fn drain_frontier(&mut self, out: &mut Vec<(u64, Option<u8>)>) {
        if self.done || self.remaining == 0 {
            return;
        }
        if !self.root_issued {
            self.root_issued = true;
            out.push((self.root_bits, None));
        }
        out.extend(self.frontier.drain(..).map(|(bits, dim)| (bits, Some(dim))));
    }

    /// Folds one node's answer back in: `found` results consume budget,
    /// its SBT children join the frontier. (When the budget reaches
    /// zero the machine is done; queued children are never visited.)
    pub fn record_visit(&mut self, found: usize, children: impl IntoIterator<Item = (u64, u8)>) {
        self.remaining = self.remaining.saturating_sub(found);
        if self.remaining == 0 {
            self.done = true;
        } else {
            self.frontier.extend(children);
        }
    }

    /// The SBT child contacts of `w` reached via `via_dim` (`None` for
    /// the traversal root), as `(bits, dimension)` pairs in the
    /// protocol's descending-dimension order.
    pub fn children_of(w: Vertex, via_dim: Option<u8>) -> Vec<(u64, u8)> {
        let mut out = Vec::new();
        match via_dim {
            None => extend_root_frontier(w, &mut out),
            Some(dim) => extend_child_contacts(w, dim, &mut out),
        }
        out
    }

    /// Surrenders the frontier buffer so the caller can recycle its
    /// capacity (see [`SupersetCoordinator::with_queue`]).
    pub fn into_queue(self) -> VecDeque<(u64, u8)> {
        self.frontier
    }
}

/// Pushes the root's initial frontier — its free dimensions, descending
/// — into any collection (`Vec` for messages, a reused `VecDeque` for
/// the coordinator queue).
pub fn extend_root_frontier(root: Vertex, out: &mut impl Extend<(u64, u8)>) {
    out.extend(
        root.zero_positions()
            .rev()
            .map(|i| (root.flip(i).bits(), i)),
    );
}

/// Pushes a node's child contacts — free dims below its arrival
/// dimension, descending — into any collection.
pub fn extend_child_contacts(w: Vertex, via_dim: u8, out: &mut impl Extend<(u64, u8)>) {
    out.extend(
        (0..via_dim)
            .rev()
            .filter(|&i| !w.bit(i))
            .map(|i| (w.flip(i).bits(), i)),
    );
}

/// Collects the bits of every vertex in the SBT subtree rooted at `w`
/// (reached via `via_dim`; `None` means `w` is the query root). By
/// Lemma 3.2 the subtree is fully determined by `w` and the arrival
/// dimension — no state from `w` itself is needed. Allocation-free:
/// children are enumerated directly off the bits, no intermediate
/// child list per node.
pub fn subtree_bits(shape: Shape, w: Vertex, via_dim: Option<u8>, out: &mut Vec<u64>) {
    out.push(w.bits());
    // The root's children span all free dims; an interior node's span
    // the free dims strictly below its arrival dimension.
    let limit = via_dim.unwrap_or(shape.r());
    for i in (0..limit).rev() {
        if !w.bit(i) {
            subtree_bits(shape, w.flip(i), Some(i), out);
        }
    }
}

/// The per-vertex `T_QUERY` handler every substrate shares: scan one
/// index table for supersets of `keywords`, returning at most
/// `remaining` ranked matches. `None` stands for an unmaterialized
/// vertex (logically contacted, holds nothing).
pub fn scan_table(
    table: Option<&IndexTable>,
    keywords: &KeywordSet,
    remaining: usize,
) -> Vec<RankedObject> {
    match table {
        Some(table) => scan_entries(table.superset_entries(keywords), keywords.len(), remaining),
        None => Vec::new(),
    }
}

/// [`scan_table`] over a backend-switched [`PostingStore`] — identical
/// results on either backend.
pub fn scan_store(
    store: Option<&PostingStore>,
    keywords: &KeywordSet,
    remaining: usize,
) -> Vec<RankedObject> {
    match store {
        Some(store) => scan_entries(store.superset_entries(keywords), keywords.len(), remaining),
        None => Vec::new(),
    }
}

/// Folds one entry stream (already superset-filtered, in keyword-set
/// order) into at most `remaining` ranked matches.
fn scan_entries<'a, E, O>(entries: E, query_len: usize, remaining: usize) -> Vec<RankedObject>
where
    E: Iterator<Item = (&'a Arc<KeywordSet>, O)>,
    O: Iterator<Item = ObjectId>,
{
    let mut found = Vec::new();
    for (keyword_set, objects) in entries {
        let extra = (keyword_set.len() - query_len) as u32;
        for object in objects {
            if found.len() >= remaining {
                return found;
            }
            found.push(RankedObject {
                object,
                keyword_set: Arc::clone(keyword_set),
                extra_keywords: extra,
            });
        }
    }
    found
}

/// Streaming per-level frontier over the SBT induced by a query root —
/// the incremental replacement for materializing every level of the
/// traversal up front.
///
/// Yields one `Vec<Vertex>` per tree depth, in the exact within-level
/// order the materialized paths used:
///
/// * **Full** levels enumerate [`Sbt::level`] (subset order) lazily,
///   one depth at a time — nothing deeper than the current level is
///   ever touched, so a search that exits at depth 2 of an `r = 20`
///   cube no longer allocates the million-vertex tail.
/// * **Pruned** levels run the wave expansion of the occupancy summary
///   (protocol child order, summary-disproven subtrees skipped),
///   holding only the current wave.
///
/// Early exits may leave the iterator mid-tree; call
/// [`FrontierLevels::drain`] to finish the expansion when exact
/// pruned-subtree accounting is wanted (the summary lookups still run,
/// but no vertex is scanned — identical counts to the materialized
/// implementation at a fraction of the allocation).
#[derive(Debug)]
pub enum FrontierLevels<'a> {
    /// Unpruned: direct per-depth enumeration of the induced SBT.
    Full {
        /// The induced spanning binomial tree.
        sbt: Sbt,
        /// Next depth to yield.
        depth: u32,
        /// `+1` (top-down) or `-1` (bottom-up).
        descending: bool,
        /// Whether the final depth was yielded.
        done: bool,
    },
    /// Pruned: breadth-first wave expansion under the summary.
    Pruned(PrunedWave<'a>),
}

/// The live wave of the pruned frontier expansion.
#[derive(Debug)]
pub struct PrunedWave<'a> {
    summary: &'a OccupancySummary,
    /// `One(F_h(K))` — positions every match must cover.
    required: u64,
    /// Current level: each node with its arrival dimension, so its
    /// children enumerate exactly as [`Sbt::children`] would.
    wave: Vec<(Vertex, Option<u8>)>,
    /// Reused child-dimension buffer.
    dims: Vec<u8>,
    /// Subtrees pruned so far.
    pruned: u64,
    done: bool,
}

impl<'a> FrontierLevels<'a> {
    /// Top-down full levels of the SBT induced by `root`.
    pub fn full(root: Vertex) -> Self {
        FrontierLevels::Full {
            sbt: Sbt::induced(root),
            depth: 0,
            descending: false,
            done: false,
        }
    }

    /// Bottom-up full levels (deepest first). Possible without
    /// materialization because any [`Sbt::level`] is directly
    /// enumerable from the root bits.
    pub fn full_bottom_up(root: Vertex) -> Self {
        let sbt = Sbt::induced(root);
        FrontierLevels::Full {
            sbt,
            depth: sbt.height(),
            descending: true,
            done: false,
        }
    }

    /// Top-down levels with summary-disproven subtrees pruned — the
    /// streaming form of [`crate::summary::pruned_levels`].
    pub fn pruned(summary: &'a OccupancySummary, root: Vertex) -> Self {
        FrontierLevels::Pruned(PrunedWave {
            summary,
            required: root.bits(),
            wave: vec![(root, None)],
            dims: Vec::new(),
            pruned: 0,
            done: false,
        })
    }

    /// Subtrees pruned by the expansion so far (0 on the full paths).
    pub fn pruned_subtrees(&self) -> u64 {
        match self {
            FrontierLevels::Full { .. } => 0,
            FrontierLevels::Pruned(w) => w.pruned,
        }
    }

    /// Whether every level has been yielded (i.e. the last yield was
    /// the final one) — distinguishes "stopped early" from "exhausted"
    /// without knowing the level count up front.
    pub fn is_done(&self) -> bool {
        match self {
            FrontierLevels::Full { done, .. } => *done,
            FrontierLevels::Pruned(w) => w.done,
        }
    }

    /// Runs the remaining expansion without yielding, so
    /// [`FrontierLevels::pruned_subtrees`] reports the whole-tree count
    /// after an early exit.
    pub fn drain(&mut self) {
        for _ in self.by_ref() {}
    }
}

impl Iterator for FrontierLevels<'_> {
    type Item = Vec<Vertex>;

    fn next(&mut self) -> Option<Vec<Vertex>> {
        match self {
            FrontierLevels::Full {
                sbt,
                depth,
                descending,
                done,
            } => {
                if *done {
                    return None;
                }
                let level: Vec<Vertex> = sbt.level(*depth).collect();
                if *descending {
                    if *depth == 0 {
                        *done = true;
                    } else {
                        *depth -= 1;
                    }
                } else if *depth == sbt.height() {
                    *done = true;
                } else {
                    *depth += 1;
                }
                Some(level)
            }
            FrontierLevels::Pruned(w) => w.advance(),
        }
    }
}

impl PrunedWave<'_> {
    /// Yields the current wave and expands the next one.
    fn advance(&mut self) -> Option<Vec<Vertex>> {
        if self.done {
            return None;
        }
        let mut next = Vec::new();
        let mut dims = std::mem::take(&mut self.dims);
        for &(w, via) in &self.wave {
            dims.clear();
            match via {
                None => dims.extend(w.zero_positions().rev()),
                Some(d) => dims.extend((0..d).rev().filter(|&i| !w.bit(i))),
            }
            for &dim in &dims {
                let child = w.flip(dim);
                if self.summary.can_prune(child.bits(), dim, self.required) {
                    self.pruned += 1;
                } else {
                    next.push((child, Some(dim)));
                }
            }
        }
        self.dims = dims;
        let level = self.wave.iter().map(|&(v, _)| v).collect();
        if next.is_empty() {
            self.done = true;
        }
        self.wave = next;
        Some(level)
    }
}

/// What a substrate must expose for the generic driver
/// [`run_superset`]: the cube shape and a per-vertex scan.
pub trait VertexStore {
    /// The hypercube shape.
    fn store_shape(&self) -> Shape;

    /// Scan vertex `bits` for supersets of `keywords`, returning at
    /// most `remaining` matches (see [`scan_table`]).
    fn scan_vertex(&self, bits: u64, keywords: &KeywordSet, remaining: usize) -> Vec<RankedObject>;
}

impl VertexStore for crate::cluster::HypercubeIndex {
    fn store_shape(&self) -> Shape {
        self.shape()
    }

    fn scan_vertex(&self, bits: u64, keywords: &KeywordSet, remaining: usize) -> Vec<RankedObject> {
        let vertex = Vertex::from_bits(self.shape(), bits).expect("driver stays inside the cube");
        scan_store(self.store_at(vertex), keywords, remaining)
    }
}

/// Outcome of [`run_superset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverOutcome {
    /// Matches in traversal (arrival) order, at most `threshold`.
    pub results: Vec<RankedObject>,
    /// Distinct vertices visited.
    pub nodes_visited: u64,
}

/// Drives one sequential top-down superset search over any
/// [`VertexStore`] — the whole protocol with transport reduced to a
/// function call. The simulator and the threaded runtime run this very
/// state machine over their own transports; parity tests pin all three
/// to each other.
pub fn run_superset<S: VertexStore + ?Sized>(
    store: &S,
    root: Vertex,
    keywords: Arc<KeywordSet>,
    threshold: usize,
) -> DriverOutcome {
    let shape = store.store_shape();
    let mut coord = SupersetCoordinator::new(root, keywords, threshold);
    let mut results = Vec::new();
    let mut nodes_visited = 0u64;
    loop {
        match coord.next_step() {
            Step::Finished => break,
            Step::Visit { bits, via_dim } => {
                nodes_visited += 1;
                let found = store.scan_vertex(bits, coord.keywords(), coord.remaining());
                let vertex =
                    Vertex::from_bits(shape, bits).expect("coordinator stays inside the cube");
                let count = found.len();
                results.extend(found);
                coord.record_visit(count, SupersetCoordinator::children_of(vertex, via_dim));
            }
        }
    }
    DriverOutcome {
        results,
        nodes_visited,
    }
}

/// How the coordinator reacts to unresponsive vertices (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// Fire-and-forget: no timers, no retries. Any lost message
    /// silently truncates the traversal — the paper's baseline.
    Naive,
    /// Retransmit with exponential backoff up to the budget, then
    /// abandon the unresponsive child's whole subtree.
    RetryOnly,
    /// Retry, then route around a dead child by querying its SBT
    /// children directly from the coordinator (Lemma 3.2: the subtree
    /// is computable from the child's bits and arrival dimension).
    Redelegate,
    /// [`RecoveryStrategy::Redelegate`], plus a sweep of the secondary
    /// hypercube (second hash seed, as in [`crate::replication`]) when
    /// any vertex stayed dead, recovering its locally stored objects.
    ReplicatedFailover,
}

/// Retry/backoff tuning for one fault-tolerant pass, in
/// substrate-defined timeout ticks (virtual ticks in the simulator,
/// milliseconds in the threaded runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtPolicy {
    /// Recovery behaviour on timeout.
    pub strategy: RecoveryStrategy,
    /// Retransmissions per child before declaring it dead.
    pub max_retries: u32,
    /// Timeout for the first attempt; doubles per retry (capped at
    /// `base_timeout × 64`). Ignored by [`RecoveryStrategy::Naive`].
    pub base_timeout: u64,
}

/// Exponential backoff: `base << attempts`, capped at `base × 64`.
pub fn ft_backoff(base: u64, attempts: u32) -> u64 {
    base.saturating_mul(1u64 << attempts.min(6))
}

/// What the fault-tolerant coordinator wants its substrate to do.
///
/// The substrate (simnet event loop, threaded-runtime worker) executes
/// each command with its own transport and timer facility and feeds
/// outcomes back via [`FtCoordinator::on_reply`] /
/// [`FtCoordinator::on_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtCmd {
    /// (Re)transmit a `T_QUERY` to vertex `bits` and, when `timeout` is
    /// set, arm a retransmission timer for that many ticks. A vertex
    /// the substrate can scan locally may be answered inline by calling
    /// `on_reply` immediately instead of sending anything.
    Send {
        /// The vertex to query.
        bits: u64,
        /// SBT arrival dimension (`None` for the traversal root).
        via_dim: Option<u8>,
        /// 0 for the first transmission, then 1, 2, … per retry.
        attempt: u32,
        /// Timer to arm, in ticks ([`RecoveryStrategy::Naive`] arms
        /// none).
        timeout: Option<u64>,
    },
    /// Disarm the timer guarding `bits` (the vertex answered, or the
    /// threshold was met and the outstanding query no longer matters).
    Cancel {
        /// The vertex whose timer dies.
        bits: u64,
    },
    /// The traversal root itself was declared dead: the requester
    /// promotes itself to coordinator (Lemma 3.2 hands it the root's
    /// frontier from the bits alone). Substrates with a separate
    /// requester endpoint redirect continuations; the threaded runtime
    /// ignores this (its client retries the whole request instead).
    Promote,
}

/// Exact coverage accounting produced by [`FtCoordinator::finish`].
///
/// The invariant every substrate asserts: `reached + skipped.len() +
/// (vertices pruned by the substrate) == subcube_vertices`, unless the
/// threshold stopped the traversal early (then the remainder is simply
/// unvisited).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtCoverage {
    /// Vertices in the query's induced subcube (`2^{r−|One|}`).
    pub subcube_vertices: u64,
    /// Distinct vertices confirmed by the coordinator.
    pub reached: u64,
    /// Bits of the vertices given up on, sorted ascending.
    pub skipped: Vec<u64>,
    /// `T_QUERY` transmissions, including retransmissions.
    pub queries_sent: u64,
    /// Retransmissions after a timeout.
    pub retries: u64,
    /// Children declared dead after the retry budget ran out.
    pub timeouts: u64,
    /// Dead children whose subtrees were re-delegated.
    pub redelegations: u64,
}

/// One outstanding fault-tolerant child query.
#[derive(Debug, Clone, Copy)]
struct FtPending {
    attempts: u32,
    via_dim: Option<u8>,
}

/// The root-side coordinator of one fault-tolerant superset pass
/// (§3.4) — retry with exponential backoff, SBT subtree re-delegation,
/// and exact reached/skipped accounting — as a sans-I/O state machine.
///
/// This is the single shared recovery implementation: the simulator
/// drives it with virtual-time timers and simnet messages, the
/// threaded runtime with wall-clock deadlines and wire frames. The
/// substrate owns transport, timers, per-vertex scans, result
/// de-duplication, and (optionally) occupancy-based pruning via the
/// `prune` filter passed to [`FtCoordinator::on_reply`] /
/// [`FtCoordinator::on_timeout`]; the machine owns which vertex is
/// outstanding, retry budgets, recovery strategy, and coverage.
///
/// Protocol: call [`FtCoordinator::start`], execute the emitted
/// [`FtCmd`]s, then feed every continuation to `on_reply` and every
/// expired timer to `on_timeout` (executing the commands each emits)
/// until [`FtCoordinator::in_flight`] reaches zero or
/// [`FtCoordinator::is_done`]. Finally [`FtCoordinator::finish`]
/// accounts whatever never answered.
#[derive(Debug)]
pub struct FtCoordinator {
    shape: Shape,
    keywords: Arc<KeywordSet>,
    remaining: usize,
    root_bits: u64,
    subcube_vertices: u64,
    policy: FtPolicy,
    pending: BTreeMap<u64, FtPending>,
    covered: HashSet<u64>,
    skipped: BTreeSet<u64>,
    done: bool,
    queries_sent: u64,
    retries: u64,
    timeouts: u64,
    redelegations: u64,
}

impl FtCoordinator {
    /// A machine for one pass rooted at `root` wanting up to
    /// `threshold` results. Callers validate `threshold > 0` and, for
    /// timered strategies, `policy.base_timeout > 0` (see
    /// [`crate::Error::ZeroThreshold`] / [`crate::Error::ZeroTimeout`]).
    pub fn new(
        root: Vertex,
        keywords: Arc<KeywordSet>,
        threshold: usize,
        policy: FtPolicy,
    ) -> Self {
        FtCoordinator {
            shape: root.shape(),
            keywords,
            remaining: threshold,
            root_bits: root.bits(),
            subcube_vertices: 1u64 << root.zero_positions().count(),
            policy,
            pending: BTreeMap::new(),
            covered: HashSet::new(),
            skipped: BTreeSet::new(),
            done: false,
            queries_sent: 0,
            retries: 0,
            timeouts: 0,
            redelegations: 0,
        }
    }

    /// The queried keyword set (shared across every hop).
    pub fn keywords(&self) -> &Arc<KeywordSet> {
        &self.keywords
    }

    /// Results still wanted (the paper's `c`).
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The traversal root's bits.
    pub fn root_bits(&self) -> u64 {
        self.root_bits
    }

    /// Whether the threshold was met (early stop).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Outstanding child queries (0 at quiescence).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether `bits` already answered — substrates use this to drop
    /// duplicate deliveries of a retried root query without re-scanning.
    pub fn is_covered(&self, bits: u64) -> bool {
        self.covered.contains(&bits)
    }

    /// Whether `bits` is currently given up on (a late reply would
    /// resurrect it).
    pub fn is_skipped(&self, bits: u64) -> bool {
        self.skipped.contains(&bits)
    }

    /// Children declared dead so far (running counter; substrates use
    /// call-to-call deltas for their own metrics).
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Dead children whose subtrees were re-delegated so far.
    pub fn redelegations(&self) -> u64 {
        self.redelegations
    }

    /// Emits the initial root query. Call exactly once.
    pub fn start(&mut self, cmds: &mut Vec<FtCmd>) {
        debug_assert!(self.pending.is_empty() && self.covered.is_empty());
        self.transmit(self.root_bits, None, 0, cmds);
        self.pending.insert(
            self.root_bits,
            FtPending {
                attempts: 0,
                via_dim: None,
            },
        );
    }

    /// Folds one vertex's answer in. `added` is how many *new* result
    /// objects the continuation carried (the substrate de-duplicates by
    /// object id — retransmitted queries re-deliver their results);
    /// `children` are the vertex's SBT child contacts; `prune` returns
    /// `true` for children whose subtree the substrate can disprove
    /// (accounting them on its side).
    ///
    /// A reply from a vertex already given up on resurrects it: it is
    /// alive, merely slow or unlucky. Duplicate replies still consume
    /// budget for any genuinely-new objects but never re-enqueue
    /// children.
    pub fn on_reply(
        &mut self,
        bits: u64,
        added: usize,
        children: &[(u64, u8)],
        prune: impl FnMut(u64, u8) -> bool,
        cmds: &mut Vec<FtCmd>,
    ) {
        let fresh = !self.covered.contains(&bits);
        if fresh {
            self.skipped.remove(&bits);
            if self.pending.remove(&bits).is_some() {
                cmds.push(FtCmd::Cancel { bits });
            }
            self.covered.insert(bits);
        }
        self.remaining = self.remaining.saturating_sub(added);
        if self.remaining == 0 {
            self.stop(cmds);
        } else if fresh && !self.done {
            self.enqueue_children(children, prune, cmds);
        }
    }

    /// A retransmission timer for `bits` expired: retry with doubled
    /// timeout while budget remains, otherwise declare the child dead
    /// and apply the recovery strategy. `prune` filters re-delegated
    /// grandchildren exactly like [`FtCoordinator::on_reply`].
    pub fn on_timeout(
        &mut self,
        bits: u64,
        prune: impl FnMut(u64, u8) -> bool,
        cmds: &mut Vec<FtCmd>,
    ) {
        if self.done {
            return;
        }
        let Some(p) = self.pending.get(&bits).copied() else {
            return; // stale timer: the vertex answered meanwhile
        };
        if p.attempts < self.policy.max_retries {
            self.retries += 1;
            let attempt = p.attempts + 1;
            self.pending.get_mut(&bits).expect("checked above").attempts = attempt;
            self.transmit(bits, p.via_dim, attempt, cmds);
            return;
        }
        // Budget exhausted: the child is dead.
        self.pending.remove(&bits);
        self.timeouts += 1;
        let vertex = Vertex::from_bits(self.shape, bits).expect("pending keys are vertices");
        match self.policy.strategy {
            RecoveryStrategy::Naive => unreachable!("naive arms no timers"),
            RecoveryStrategy::RetryOnly => {
                // The whole subtree behind the dead child is
                // unreachable.
                let mut subtree = Vec::new();
                subtree_bits(self.shape, vertex, p.via_dim, &mut subtree);
                for w in subtree {
                    if !self.covered.contains(&w) {
                        self.skipped.insert(w);
                    }
                }
            }
            RecoveryStrategy::Redelegate | RecoveryStrategy::ReplicatedFailover => {
                self.skipped.insert(bits);
                if p.via_dim.is_none() {
                    // The root itself is dead: promote the requester.
                    cmds.push(FtCmd::Promote);
                }
                let children = SupersetCoordinator::children_of(vertex, p.via_dim);
                if !children.is_empty() {
                    self.redelegations += 1;
                    self.enqueue_children(&children, prune, cmds);
                }
            }
        }
    }

    /// Quiescence: accounts queries still outstanding (no timers were
    /// armed, or the coordinator died) as skipped subtrees and returns
    /// the pass's exact coverage.
    pub fn finish(&mut self) -> FtCoverage {
        let mut subtree = Vec::new();
        for (bits, p) in std::mem::take(&mut self.pending) {
            let vertex = Vertex::from_bits(self.shape, bits).expect("pending keys are vertices");
            subtree.clear();
            subtree_bits(self.shape, vertex, p.via_dim, &mut subtree);
            for &w in &subtree {
                if !self.covered.contains(&w) {
                    self.skipped.insert(w);
                }
            }
        }
        FtCoverage {
            subcube_vertices: self.subcube_vertices,
            reached: self.covered.len() as u64,
            skipped: self.skipped.iter().copied().collect(),
            queries_sent: self.queries_sent,
            retries: self.retries,
            timeouts: self.timeouts,
            redelegations: self.redelegations,
        }
    }

    /// Threshold met: latch done and cancel everything outstanding
    /// (those vertices are unvisited, not skipped).
    fn stop(&mut self, cmds: &mut Vec<FtCmd>) {
        self.done = true;
        for (bits, _) in std::mem::take(&mut self.pending) {
            cmds.push(FtCmd::Cancel { bits });
        }
    }

    /// Queries every not-yet-tracked child. Pruned children never enter
    /// `pending` — neither queried nor retried nor re-delegated.
    fn enqueue_children(
        &mut self,
        children: &[(u64, u8)],
        mut prune: impl FnMut(u64, u8) -> bool,
        cmds: &mut Vec<FtCmd>,
    ) {
        for &(bits, dim) in children {
            if self.covered.contains(&bits)
                || self.skipped.contains(&bits)
                || self.pending.contains_key(&bits)
            {
                continue;
            }
            if prune(bits, dim) {
                continue;
            }
            self.transmit(bits, Some(dim), 0, cmds);
            self.pending.insert(
                bits,
                FtPending {
                    attempts: 0,
                    via_dim: Some(dim),
                },
            );
        }
    }

    fn transmit(&mut self, bits: u64, via_dim: Option<u8>, attempt: u32, cmds: &mut Vec<FtCmd>) {
        self.queries_sent += 1;
        let timeout = (self.policy.strategy != RecoveryStrategy::Naive)
            .then(|| ft_backoff(self.policy.base_timeout, attempt));
        cmds.push(FtCmd::Send {
            bits,
            via_dim,
            attempt,
            timeout,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::HypercubeIndex;
    use crate::search::SupersetQuery;
    use hyperdex_dht::ObjectId;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    const CORPUS: &[(u64, &str)] = &[
        (1, "a"),
        (2, "a b"),
        (3, "a b c"),
        (4, "a c"),
        (5, "b c"),
        (6, "a d e"),
        (7, "x y"),
        (8, "a b d"),
    ];

    fn index(r: u8) -> HypercubeIndex {
        let mut idx = HypercubeIndex::new(r, 0).unwrap();
        for &(id, kws) in CORPUS {
            idx.insert(oid(id), set(kws)).unwrap();
        }
        idx
    }

    #[test]
    fn coordinator_covers_the_whole_subcube_once() {
        let shape = Shape::new(6).unwrap();
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1);
        let mut seen = std::collections::BTreeSet::new();
        loop {
            match coord.next_step() {
                Step::Finished => break,
                Step::Visit { bits, via_dim } => {
                    assert!(seen.insert(bits), "vertex {bits:#x} visited twice");
                    let v = Vertex::from_bits(shape, bits).unwrap();
                    coord.record_visit(0, SupersetCoordinator::children_of(v, via_dim));
                }
            }
        }
        let free = root.zero_positions().count();
        assert_eq!(seen.len() as u64, 1u64 << free, "full induced subcube");
        assert!(seen.iter().all(|&b| b & root.bits() == root.bits()));
    }

    #[test]
    fn coordinator_stops_at_threshold() {
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, kw, 3);
        // Root answers 2, first child answers 1 — done, rest unvisited.
        assert!(matches!(
            coord.next_step(),
            Step::Visit { via_dim: None, .. }
        ));
        coord.record_visit(2, SupersetCoordinator::children_of(root, None));
        assert_eq!(coord.remaining(), 1);
        let Step::Visit { bits, via_dim } = coord.next_step() else {
            panic!("frontier must be non-empty");
        };
        let v = Vertex::from_bits(root.shape(), bits).unwrap();
        coord.record_visit(1, SupersetCoordinator::children_of(v, via_dim));
        assert!(coord.is_done());
        assert_eq!(coord.next_step(), Step::Finished);
    }

    #[test]
    fn drain_frontier_matches_sequential_visit_order() {
        // The batched drive's dispatch order must equal the sequential
        // machine's visit order when every visit returns no results
        // (the unthresholded case): drain bursts, fold in burst order.
        let shape = Shape::new(6).unwrap();
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);

        let mut seq = SupersetCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1);
        let mut sequential = Vec::new();
        loop {
            match seq.next_step() {
                Step::Finished => break,
                Step::Visit { bits, via_dim } => {
                    sequential.push(bits);
                    let v = Vertex::from_bits(shape, bits).unwrap();
                    seq.record_visit(0, SupersetCoordinator::children_of(v, via_dim));
                }
            }
        }

        let mut coord = SupersetCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1);
        let mut batched = Vec::new();
        let mut burst = Vec::new();
        loop {
            coord.drain_frontier(&mut burst);
            if burst.is_empty() {
                break;
            }
            assert!(!coord.is_done(), "drain_frontier never latches done");
            for (bits, via_dim) in burst.drain(..) {
                batched.push(bits);
                let v = Vertex::from_bits(shape, bits).unwrap();
                coord.record_visit(0, SupersetCoordinator::children_of(v, via_dim));
            }
        }
        assert_eq!(batched, sequential);

        // Once stopped, the drain emits nothing more.
        coord.stop();
        coord.drain_frontier(&mut burst);
        assert!(burst.is_empty());
    }

    #[test]
    fn coordinator_stop_latches() {
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, kw, 10);
        coord.next_step();
        coord.record_visit(0, SupersetCoordinator::children_of(root, None));
        coord.stop();
        assert_eq!(coord.next_step(), Step::Finished);
    }

    #[test]
    fn queue_reuse_keeps_capacity_and_clears_contents() {
        let hasher = crate::hashing::KeywordHasher::new(8, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1);
        coord.next_step();
        coord.record_visit(0, SupersetCoordinator::children_of(root, None));
        let queue = coord.into_queue();
        assert!(!queue.is_empty(), "children were queued");
        let reused = SupersetCoordinator::with_queue(root, kw, 10, queue);
        assert!(reused.frontier.is_empty(), "reused queue starts empty");
    }

    #[test]
    fn driver_matches_direct_engine() {
        let mut idx = index(10);
        for query in ["a", "a b", "b", "x", "zzz"] {
            let kw = Arc::new(set(query));
            let root = idx.vertex_for(&kw);
            let drv = run_superset(&idx, root, Arc::clone(&kw), usize::MAX - 1);
            let direct = idx
                .superset_search(&SupersetQuery::new(set(query)).use_cache(false))
                .unwrap();
            let mut a: Vec<ObjectId> = drv.results.iter().map(|r| r.object).collect();
            let mut b: Vec<ObjectId> = direct.results.iter().map(|r| r.object).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {query}");
            assert_eq!(
                drv.nodes_visited, direct.stats.nodes_contacted,
                "node parity for {query}"
            );
        }
    }

    #[test]
    fn driver_respects_threshold() {
        let idx = index(8);
        let kw = Arc::new(set("a"));
        let root = idx.vertex_for(&kw);
        let out = run_superset(&idx, root, kw, 2);
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn scan_table_honors_remaining_and_missing_tables() {
        assert!(scan_table(None, &set("a"), 10).is_empty());
        let mut table = IndexTable::new();
        for i in 0..5 {
            table.insert(set(&format!("a extra{i}")), oid(i));
        }
        assert_eq!(scan_table(Some(&table), &set("a"), 3).len(), 3);
        assert_eq!(scan_table(Some(&table), &set("a"), 99).len(), 5);
        assert!(scan_table(Some(&table), &set("q"), 99).is_empty());
    }

    fn ft_policy(strategy: RecoveryStrategy) -> FtPolicy {
        FtPolicy {
            strategy,
            max_retries: 2,
            base_timeout: 4,
        }
    }

    /// Drives the machine against a perfect substrate: every `Send` is
    /// answered immediately with zero results and true SBT children.
    fn drive_perfect(machine: &mut FtCoordinator, shape: Shape) {
        let mut cmds = Vec::new();
        machine.start(&mut cmds);
        while let Some(cmd) = cmds.pop() {
            if let FtCmd::Send { bits, via_dim, .. } = cmd {
                let v = Vertex::from_bits(shape, bits).unwrap();
                let children = SupersetCoordinator::children_of(v, via_dim);
                machine.on_reply(bits, 0, &children, |_, _| false, &mut cmds);
            }
        }
    }

    #[test]
    fn ft_machine_fault_free_covers_the_subcube() {
        let shape = Shape::new(6).unwrap();
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        for strategy in [
            RecoveryStrategy::Naive,
            RecoveryStrategy::RetryOnly,
            RecoveryStrategy::Redelegate,
        ] {
            let mut m =
                FtCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1, ft_policy(strategy));
            drive_perfect(&mut m, shape);
            assert_eq!(m.in_flight(), 0);
            let cov = m.finish();
            assert_eq!(cov.reached, cov.subcube_vertices, "{strategy:?}");
            assert!(cov.skipped.is_empty());
            assert_eq!(cov.retries, 0);
            assert_eq!(cov.timeouts, 0);
            assert_eq!(cov.queries_sent, cov.subcube_vertices);
        }
    }

    #[test]
    fn ft_machine_retries_then_redelegates_a_dead_child() {
        let shape = Shape::new(6).unwrap();
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let policy = ft_policy(RecoveryStrategy::Redelegate);
        let mut m = FtCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1, policy);
        let mut cmds = Vec::new();
        m.start(&mut cmds);
        // Root answers with its children; pick the first child as dead.
        let children = SupersetCoordinator::children_of(root, None);
        cmds.clear();
        m.on_reply(root.bits(), 0, &children, |_, _| false, &mut cmds);
        let (dead, dead_dim) = children[0];
        // Timers expire: max_retries retransmissions, each with doubled
        // timeout, then the child is declared dead and re-delegated.
        for attempt in 1..=policy.max_retries {
            cmds.clear();
            m.on_timeout(dead, |_, _| false, &mut cmds);
            assert!(
                cmds.iter().any(|c| matches!(
                    c,
                    FtCmd::Send { bits, attempt: a, timeout: Some(t), .. }
                        if *bits == dead
                            && *a == attempt
                            && *t == ft_backoff(policy.base_timeout, attempt)
                )),
                "attempt {attempt} retransmits: {cmds:?}"
            );
        }
        cmds.clear();
        m.on_timeout(dead, |_, _| false, &mut cmds);
        let grandchildren = SupersetCoordinator::children_of(
            Vertex::from_bits(shape, dead).unwrap(),
            Some(dead_dim),
        );
        for &(gc, _) in &grandchildren {
            assert!(
                cmds.iter()
                    .any(|c| matches!(c, FtCmd::Send { bits, .. } if *bits == gc)),
                "grandchild {gc:#x} re-delegated"
            );
        }
        // Answer everything still outstanding: the re-delegated
        // grandchildren plus the root's other children (whose original
        // `Send`s were consumed above).
        cmds.extend(children.iter().skip(1).map(|&(bits, dim)| FtCmd::Send {
            bits,
            via_dim: Some(dim),
            attempt: 0,
            timeout: None,
        }));
        while let Some(cmd) = cmds.pop() {
            if let FtCmd::Send { bits, via_dim, .. } = cmd {
                let v = Vertex::from_bits(shape, bits).unwrap();
                let kids = SupersetCoordinator::children_of(v, via_dim);
                m.on_reply(bits, 0, &kids, |_, _| false, &mut cmds);
            }
        }
        assert_eq!(m.in_flight(), 0);
        let cov = m.finish();
        assert_eq!(cov.skipped, vec![dead], "only the dead child skipped");
        assert_eq!(cov.reached, cov.subcube_vertices - 1);
        assert_eq!(cov.retries, u64::from(policy.max_retries));
        assert_eq!(cov.timeouts, 1);
        assert_eq!(cov.redelegations, 1);
    }

    #[test]
    fn ft_machine_threshold_stop_cancels_not_skips() {
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut m = FtCoordinator::new(
            root,
            Arc::clone(&kw),
            1,
            ft_policy(RecoveryStrategy::RetryOnly),
        );
        let mut cmds = Vec::new();
        m.start(&mut cmds);
        let children = SupersetCoordinator::children_of(root, None);
        cmds.clear();
        m.on_reply(root.bits(), 0, &children, |_, _| false, &mut cmds);
        assert!(m.in_flight() > 0);
        // First child satisfies the threshold: everything else cancels.
        cmds.clear();
        m.on_reply(children[0].0, 1, &[], |_, _| false, &mut cmds);
        assert!(m.is_done());
        assert_eq!(m.in_flight(), 0);
        assert!(cmds.iter().all(|c| matches!(c, FtCmd::Cancel { .. })));
        let cov = m.finish();
        assert!(cov.skipped.is_empty(), "early stop skips nothing");
    }

    #[test]
    fn ft_machine_late_reply_resurrects_a_skipped_vertex() {
        let shape = Shape::new(6).unwrap();
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut policy = ft_policy(RecoveryStrategy::Redelegate);
        policy.max_retries = 0;
        let mut m = FtCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1, policy);
        let mut cmds = Vec::new();
        m.start(&mut cmds);
        let children = SupersetCoordinator::children_of(root, None);
        cmds.clear();
        m.on_reply(root.bits(), 0, &children, |_, _| false, &mut cmds);
        let (dead, dead_dim) = children[0];
        cmds.clear();
        m.on_timeout(dead, |_, _| false, &mut cmds);
        assert!(m.is_skipped(dead));
        // The "dead" child answers after all — it returns to reached and
        // its (already re-delegated) children are not double-enqueued.
        let redelegated = cmds.clone();
        cmds.clear();
        let kids = SupersetCoordinator::children_of(
            Vertex::from_bits(shape, dead).unwrap(),
            Some(dead_dim),
        );
        m.on_reply(dead, 0, &kids, |_, _| false, &mut cmds);
        assert!(m.is_covered(dead));
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, FtCmd::Send { bits, .. } if kids.iter().any(|k| k.0 == *bits))));
        // Answer everything still outstanding (original children and the
        // re-delegated grandchildren), then verify the resurrection.
        let mut queue: Vec<FtCmd> = redelegated;
        queue.extend(children.iter().skip(1).map(|&(bits, dim)| FtCmd::Send {
            bits,
            via_dim: Some(dim),
            attempt: 0,
            timeout: None,
        }));
        while let Some(cmd) = queue.pop() {
            if let FtCmd::Send { bits, via_dim, .. } = cmd {
                let v = Vertex::from_bits(shape, bits).unwrap();
                let k = SupersetCoordinator::children_of(v, via_dim);
                m.on_reply(bits, 0, &k, |_, _| false, &mut queue);
            }
        }
        assert_eq!(m.in_flight(), 0);
        let cov = m.finish();
        assert!(cov.skipped.is_empty(), "resurrected: {:?}", cov.skipped);
        assert_eq!(cov.reached, cov.subcube_vertices);
    }

    #[test]
    fn ft_machine_naive_arms_no_timers_and_accounts_pending() {
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut m = FtCoordinator::new(
            root,
            Arc::clone(&kw),
            usize::MAX - 1,
            ft_policy(RecoveryStrategy::Naive),
        );
        let mut cmds = Vec::new();
        m.start(&mut cmds);
        assert!(matches!(cmds[0], FtCmd::Send { timeout: None, .. }));
        // The root query is lost; quiescence accounts the whole subcube.
        let cov = m.finish();
        assert_eq!(cov.skipped.len() as u64, cov.subcube_vertices);
        assert_eq!(cov.reached, 0);
    }

    #[test]
    fn subtree_bits_counts_lemma_3_2() {
        let shape = Shape::new(6).unwrap();
        let root = Vertex::from_bits(shape, 0b100).unwrap();
        let mut out = Vec::new();
        subtree_bits(shape, root, None, &mut out);
        assert_eq!(out.len() as u64, 1 << 5, "root subtree spans free dims");
        let child = root.flip(4);
        out.clear();
        subtree_bits(shape, child, Some(4), &mut out);
        // Free dims strictly below 4 excluding bit 2 (set): {0, 1, 3}.
        assert_eq!(out.len(), 1 << 3);
    }
}
