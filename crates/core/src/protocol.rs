//! Engine-agnostic core of the superset/pin/insert protocol.
//!
//! Three execution substrates run the paper's §3.3 protocol:
//!
//! * the **direct engine** ([`crate::cluster::HypercubeIndex`]) — plain
//!   function calls, exact node/message accounting;
//! * the **simulator** ([`crate::sim_protocol::ProtocolSim`]) — the
//!   same traversal as discrete-event messages with latency and faults;
//! * the **threaded runtime** (`hyperdex-runtime`) — the same traversal
//!   as wire-encoded frames between OS threads.
//!
//! Before this module each substrate re-implemented the coordinator
//! loop (pop the SBT frontier, query one node, fold its answer back
//! in), and the three copies had to be kept in lock-step by parity
//! tests alone. [`SupersetCoordinator`] is the single shared
//! implementation: a sans-I/O state machine that knows *which vertex to
//! visit next* and *how an answer changes the frontier*, while the
//! substrate supplies transport (a call, a simnet message, a wire
//! frame). The SBT child-derivation helpers (Lemma 3.2: a node's
//! subtree is computable from its bits and arrival dimension alone)
//! live here too, as does the per-vertex table scan every substrate
//! performs on a `T_QUERY`.

use std::collections::VecDeque;
use std::sync::Arc;

use hyperdex_hypercube::{Shape, Vertex};

use crate::index::IndexTable;
use crate::keyword::KeywordSet;
use crate::search::RankedObject;

/// What the coordinator wants executed next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Deliver a `T_QUERY` to vertex `bits` (reached via `via_dim`;
    /// `None` marks the traversal root) and report the answer back via
    /// [`SupersetCoordinator::record_visit`].
    Visit {
        /// The vertex to query.
        bits: u64,
        /// The dimension through which the SBT reaches it (`None` for
        /// the root).
        via_dim: Option<u8>,
    },
    /// The traversal is complete: the threshold was met or the induced
    /// subcube is exhausted.
    Finished,
}

/// The root-side coordinator state machine of one sequential superset
/// search (§3.3): the frontier queue `U`, the remaining-result budget
/// `c`, and the termination rule.
///
/// The machine is sans-I/O: call [`SupersetCoordinator::next_step`] to
/// learn the next vertex to query, execute the query however the
/// substrate likes, then feed the answer to
/// [`SupersetCoordinator::record_visit`]. A `T_STOP` (the queried node
/// saw the threshold met) maps to [`SupersetCoordinator::stop`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use hyperdex_core::protocol::{SupersetCoordinator, Step};
/// use hyperdex_core::{KeywordHasher, KeywordSet};
///
/// let hasher = KeywordHasher::new(6, 0)?;
/// let kw = Arc::new(KeywordSet::parse("a")?);
/// let root = hasher.vertex_for(&kw);
/// let mut coord = SupersetCoordinator::new(root, kw, 10);
/// // The first step is always the root itself.
/// assert_eq!(
///     coord.next_step(),
///     Step::Visit { bits: root.bits(), via_dim: None }
/// );
/// coord.record_visit(0, SupersetCoordinator::children_of(root, None));
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug)]
pub struct SupersetCoordinator {
    keywords: Arc<KeywordSet>,
    remaining: usize,
    root_bits: u64,
    frontier: VecDeque<(u64, u8)>,
    root_issued: bool,
    done: bool,
}

impl SupersetCoordinator {
    /// Starts a traversal rooted at `root` wanting up to `threshold`
    /// results.
    pub fn new(root: Vertex, keywords: Arc<KeywordSet>, threshold: usize) -> Self {
        Self::with_queue(root, keywords, threshold, VecDeque::new())
    }

    /// [`SupersetCoordinator::new`] reusing an existing frontier buffer
    /// (cleared first) — hot loops recycle the queue's capacity across
    /// searches instead of reallocating it.
    pub fn with_queue(
        root: Vertex,
        keywords: Arc<KeywordSet>,
        threshold: usize,
        mut frontier: VecDeque<(u64, u8)>,
    ) -> Self {
        frontier.clear();
        SupersetCoordinator {
            keywords,
            remaining: threshold,
            root_bits: root.bits(),
            frontier,
            root_issued: false,
            done: false,
        }
    }

    /// The queried keyword set (shared: every hop of the traversal
    /// holds the same allocation).
    pub fn keywords(&self) -> &Arc<KeywordSet> {
        &self.keywords
    }

    /// Results still wanted (the paper's `c`).
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The traversal root's bits — `One(F_h(K))`, the mask occupancy
    /// pruning tests against.
    pub fn root_bits(&self) -> u64 {
        self.root_bits
    }

    /// Whether the traversal has terminated.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Marks the traversal complete (threshold met, `T_STOP` received,
    /// or the substrate aborts).
    pub fn stop(&mut self) {
        self.done = true;
    }

    /// The next vertex to query: the root first, then the frontier in
    /// FIFO order. Returns [`Step::Finished`] — and latches done — once
    /// the threshold is met or the frontier is exhausted.
    pub fn next_step(&mut self) -> Step {
        if self.done || self.remaining == 0 {
            self.done = true;
            return Step::Finished;
        }
        if !self.root_issued {
            self.root_issued = true;
            return Step::Visit {
                bits: self.root_bits,
                via_dim: None,
            };
        }
        match self.frontier.pop_front() {
            Some((bits, dim)) => Step::Visit {
                bits,
                via_dim: Some(dim),
            },
            None => {
                self.done = true;
                Step::Finished
            }
        }
    }

    /// Folds one node's answer back in: `found` results consume budget,
    /// its SBT children join the frontier. (When the budget reaches
    /// zero the machine is done; queued children are never visited.)
    pub fn record_visit(&mut self, found: usize, children: impl IntoIterator<Item = (u64, u8)>) {
        self.remaining = self.remaining.saturating_sub(found);
        if self.remaining == 0 {
            self.done = true;
        } else {
            self.frontier.extend(children);
        }
    }

    /// The SBT child contacts of `w` reached via `via_dim` (`None` for
    /// the traversal root), as `(bits, dimension)` pairs in the
    /// protocol's descending-dimension order.
    pub fn children_of(w: Vertex, via_dim: Option<u8>) -> Vec<(u64, u8)> {
        let mut out = Vec::new();
        match via_dim {
            None => extend_root_frontier(w, &mut out),
            Some(dim) => extend_child_contacts(w, dim, &mut out),
        }
        out
    }

    /// Surrenders the frontier buffer so the caller can recycle its
    /// capacity (see [`SupersetCoordinator::with_queue`]).
    pub fn into_queue(self) -> VecDeque<(u64, u8)> {
        self.frontier
    }
}

/// Pushes the root's initial frontier — its free dimensions, descending
/// — into any collection (`Vec` for messages, a reused `VecDeque` for
/// the coordinator queue).
pub fn extend_root_frontier(root: Vertex, out: &mut impl Extend<(u64, u8)>) {
    out.extend(
        root.zero_positions()
            .rev()
            .map(|i| (root.flip(i).bits(), i)),
    );
}

/// Pushes a node's child contacts — free dims below its arrival
/// dimension, descending — into any collection.
pub fn extend_child_contacts(w: Vertex, via_dim: u8, out: &mut impl Extend<(u64, u8)>) {
    out.extend(
        (0..via_dim)
            .rev()
            .filter(|&i| !w.bit(i))
            .map(|i| (w.flip(i).bits(), i)),
    );
}

/// Collects the bits of every vertex in the SBT subtree rooted at `w`
/// (reached via `via_dim`; `None` means `w` is the query root). By
/// Lemma 3.2 the subtree is fully determined by `w` and the arrival
/// dimension — no state from `w` itself is needed. Allocation-free:
/// children are enumerated directly off the bits, no intermediate
/// child list per node.
pub fn subtree_bits(shape: Shape, w: Vertex, via_dim: Option<u8>, out: &mut Vec<u64>) {
    out.push(w.bits());
    // The root's children span all free dims; an interior node's span
    // the free dims strictly below its arrival dimension.
    let limit = via_dim.unwrap_or(shape.r());
    for i in (0..limit).rev() {
        if !w.bit(i) {
            subtree_bits(shape, w.flip(i), Some(i), out);
        }
    }
}

/// The per-vertex `T_QUERY` handler every substrate shares: scan one
/// index table for supersets of `keywords`, returning at most
/// `remaining` ranked matches. `None` stands for an unmaterialized
/// vertex (logically contacted, holds nothing).
pub fn scan_table(
    table: Option<&IndexTable>,
    keywords: &KeywordSet,
    remaining: usize,
) -> Vec<RankedObject> {
    let Some(table) = table else {
        return Vec::new();
    };
    let mut found = Vec::new();
    for (keyword_set, objects) in table.superset_entries(keywords) {
        let extra = (keyword_set.len() - keywords.len()) as u32;
        for object in objects {
            if found.len() >= remaining {
                return found;
            }
            found.push(RankedObject {
                object,
                keyword_set: Arc::clone(keyword_set),
                extra_keywords: extra,
            });
        }
    }
    found
}

/// What a substrate must expose for the generic driver
/// [`run_superset`]: the cube shape and a per-vertex scan.
pub trait VertexStore {
    /// The hypercube shape.
    fn store_shape(&self) -> Shape;

    /// Scan vertex `bits` for supersets of `keywords`, returning at
    /// most `remaining` matches (see [`scan_table`]).
    fn scan_vertex(&self, bits: u64, keywords: &KeywordSet, remaining: usize) -> Vec<RankedObject>;
}

impl VertexStore for crate::cluster::HypercubeIndex {
    fn store_shape(&self) -> Shape {
        self.shape()
    }

    fn scan_vertex(&self, bits: u64, keywords: &KeywordSet, remaining: usize) -> Vec<RankedObject> {
        let vertex = Vertex::from_bits(self.shape(), bits).expect("driver stays inside the cube");
        scan_table(self.table_at(vertex), keywords, remaining)
    }
}

/// Outcome of [`run_superset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverOutcome {
    /// Matches in traversal (arrival) order, at most `threshold`.
    pub results: Vec<RankedObject>,
    /// Distinct vertices visited.
    pub nodes_visited: u64,
}

/// Drives one sequential top-down superset search over any
/// [`VertexStore`] — the whole protocol with transport reduced to a
/// function call. The simulator and the threaded runtime run this very
/// state machine over their own transports; parity tests pin all three
/// to each other.
pub fn run_superset<S: VertexStore + ?Sized>(
    store: &S,
    root: Vertex,
    keywords: Arc<KeywordSet>,
    threshold: usize,
) -> DriverOutcome {
    let shape = store.store_shape();
    let mut coord = SupersetCoordinator::new(root, keywords, threshold);
    let mut results = Vec::new();
    let mut nodes_visited = 0u64;
    loop {
        match coord.next_step() {
            Step::Finished => break,
            Step::Visit { bits, via_dim } => {
                nodes_visited += 1;
                let found = store.scan_vertex(bits, coord.keywords(), coord.remaining());
                let vertex =
                    Vertex::from_bits(shape, bits).expect("coordinator stays inside the cube");
                let count = found.len();
                results.extend(found);
                coord.record_visit(count, SupersetCoordinator::children_of(vertex, via_dim));
            }
        }
    }
    DriverOutcome {
        results,
        nodes_visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::HypercubeIndex;
    use crate::search::SupersetQuery;
    use hyperdex_dht::ObjectId;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    const CORPUS: &[(u64, &str)] = &[
        (1, "a"),
        (2, "a b"),
        (3, "a b c"),
        (4, "a c"),
        (5, "b c"),
        (6, "a d e"),
        (7, "x y"),
        (8, "a b d"),
    ];

    fn index(r: u8) -> HypercubeIndex {
        let mut idx = HypercubeIndex::new(r, 0).unwrap();
        for &(id, kws) in CORPUS {
            idx.insert(oid(id), set(kws)).unwrap();
        }
        idx
    }

    #[test]
    fn coordinator_covers_the_whole_subcube_once() {
        let shape = Shape::new(6).unwrap();
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1);
        let mut seen = std::collections::BTreeSet::new();
        loop {
            match coord.next_step() {
                Step::Finished => break,
                Step::Visit { bits, via_dim } => {
                    assert!(seen.insert(bits), "vertex {bits:#x} visited twice");
                    let v = Vertex::from_bits(shape, bits).unwrap();
                    coord.record_visit(0, SupersetCoordinator::children_of(v, via_dim));
                }
            }
        }
        let free = root.zero_positions().count();
        assert_eq!(seen.len() as u64, 1u64 << free, "full induced subcube");
        assert!(seen.iter().all(|&b| b & root.bits() == root.bits()));
    }

    #[test]
    fn coordinator_stops_at_threshold() {
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, kw, 3);
        // Root answers 2, first child answers 1 — done, rest unvisited.
        assert!(matches!(
            coord.next_step(),
            Step::Visit { via_dim: None, .. }
        ));
        coord.record_visit(2, SupersetCoordinator::children_of(root, None));
        assert_eq!(coord.remaining(), 1);
        let Step::Visit { bits, via_dim } = coord.next_step() else {
            panic!("frontier must be non-empty");
        };
        let v = Vertex::from_bits(root.shape(), bits).unwrap();
        coord.record_visit(1, SupersetCoordinator::children_of(v, via_dim));
        assert!(coord.is_done());
        assert_eq!(coord.next_step(), Step::Finished);
    }

    #[test]
    fn coordinator_stop_latches() {
        let hasher = crate::hashing::KeywordHasher::new(6, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, kw, 10);
        coord.next_step();
        coord.record_visit(0, SupersetCoordinator::children_of(root, None));
        coord.stop();
        assert_eq!(coord.next_step(), Step::Finished);
    }

    #[test]
    fn queue_reuse_keeps_capacity_and_clears_contents() {
        let hasher = crate::hashing::KeywordHasher::new(8, 0).unwrap();
        let kw = Arc::new(set("a"));
        let root = hasher.vertex_for(&kw);
        let mut coord = SupersetCoordinator::new(root, Arc::clone(&kw), usize::MAX - 1);
        coord.next_step();
        coord.record_visit(0, SupersetCoordinator::children_of(root, None));
        let queue = coord.into_queue();
        assert!(!queue.is_empty(), "children were queued");
        let reused = SupersetCoordinator::with_queue(root, kw, 10, queue);
        assert!(reused.frontier.is_empty(), "reused queue starts empty");
    }

    #[test]
    fn driver_matches_direct_engine() {
        let mut idx = index(10);
        for query in ["a", "a b", "b", "x", "zzz"] {
            let kw = Arc::new(set(query));
            let root = idx.vertex_for(&kw);
            let drv = run_superset(&idx, root, Arc::clone(&kw), usize::MAX - 1);
            let direct = idx
                .superset_search(&SupersetQuery::new(set(query)).use_cache(false))
                .unwrap();
            let mut a: Vec<ObjectId> = drv.results.iter().map(|r| r.object).collect();
            let mut b: Vec<ObjectId> = direct.results.iter().map(|r| r.object).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {query}");
            assert_eq!(
                drv.nodes_visited, direct.stats.nodes_contacted,
                "node parity for {query}"
            );
        }
    }

    #[test]
    fn driver_respects_threshold() {
        let idx = index(8);
        let kw = Arc::new(set("a"));
        let root = idx.vertex_for(&kw);
        let out = run_superset(&idx, root, kw, 2);
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn scan_table_honors_remaining_and_missing_tables() {
        assert!(scan_table(None, &set("a"), 10).is_empty());
        let mut table = IndexTable::new();
        for i in 0..5 {
            table.insert(set(&format!("a extra{i}")), oid(i));
        }
        assert_eq!(scan_table(Some(&table), &set("a"), 3).len(), 3);
        assert_eq!(scan_table(Some(&table), &set("a"), 99).len(), 5);
        assert!(scan_table(Some(&table), &set("q"), 99).is_empty());
    }

    #[test]
    fn subtree_bits_counts_lemma_3_2() {
        let shape = Shape::new(6).unwrap();
        let root = Vertex::from_bits(shape, 0b100).unwrap();
        let mut out = Vec::new();
        subtree_bits(shape, root, None, &mut out);
        assert_eq!(out.len() as u64, 1 << 5, "root subtree spans free dims");
        let child = root.flip(4);
        out.clear();
        subtree_bits(shape, child, Some(4), &mut out);
        // Free dims strictly below 4 excluding bit 2 (set): {0, 1, 3}.
        assert_eq!(out.len(), 1 << 3);
    }
}
