//! Pluggable per-vertex posting storage: the `hyperdex-store` subsystem.
//!
//! Every executor (direct engine, simulator, threaded runtime, TCP
//! servers) keeps one posting table per hypercube vertex. This module
//! puts two interchangeable backends behind [`PostingStore`]:
//!
//! * [`StoreBackend::Table`] — the original pointer-rich
//!   [`IndexTable`]: a `BTreeMap` of `BTreeSet` posting lists.
//! * [`StoreBackend::Slab`] — the struct-of-arrays [`SlabStore`]
//!   (see [`slab`]): signatures in one contiguous slab scanned
//!   batch-wise, posting lists varint-delta-encoded in a byte arena.
//!
//! The backend is selected per process with the `HYPERDEX_STORE`
//! environment variable (`table` | `slab`, default `table`) or
//! explicitly via the executor configs. Both backends answer every
//! query **byte-identically** — same entries, same order, same
//! truncation — so flipping the switch changes memory layout and
//! nothing else. `tests/store_parity.rs` holds that property under
//! random interleavings.

pub mod codec;
pub mod slab;

use std::sync::Arc;

use hyperdex_dht::ObjectId;

use crate::index::{IndexTable, SupersetEntries, TableObjects};
use crate::keyword::KeywordSet;

pub use codec::DeltaIter;
pub use slab::{SlabEntries, SlabStore};

/// Which posting-storage layout a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreBackend {
    /// `BTreeMap`/`BTreeSet` tables ([`IndexTable`]) — the original
    /// layout, and the parity reference.
    #[default]
    Table,
    /// Struct-of-arrays slab with delta-encoded postings
    /// ([`SlabStore`]).
    Slab,
}

impl StoreBackend {
    /// The environment variable every executor consults by default.
    pub const ENV: &'static str = "HYPERDEX_STORE";

    /// Parses a backend name (`table` | `slab`).
    pub fn parse(name: &str) -> Option<StoreBackend> {
        match name {
            "table" => Some(StoreBackend::Table),
            "slab" => Some(StoreBackend::Slab),
            _ => None,
        }
    }

    /// The backend's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            StoreBackend::Table => "table",
            StoreBackend::Slab => "slab",
        }
    }

    /// Reads `HYPERDEX_STORE` (default [`StoreBackend::Table`]).
    ///
    /// # Panics
    ///
    /// On an unrecognized value — a silently ignored backend switch
    /// would invalidate whatever experiment set it.
    pub fn from_env() -> StoreBackend {
        match std::env::var(Self::ENV) {
            Ok(v) => Self::parse(&v)
                .unwrap_or_else(|| panic!("{}={v:?} is not `table` or `slab`", Self::ENV)),
            Err(_) => StoreBackend::default(),
        }
    }
}

impl std::fmt::Display for StoreBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory accounting for one store (see `DESIGN.md` §17 for the
/// table-backend estimation model; slab numbers are measured buffer
/// capacities).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreFootprint {
    /// Total resident bytes attributed to the store.
    pub bytes_resident: usize,
    /// Bytes of the contiguous signature slab (0 on the table backend).
    pub slab_bytes: usize,
    /// Live slots / total slots (1.0 when empty or on the table
    /// backend, which has no tombstones).
    pub slot_occupancy: f64,
    /// Posting-arena capacity in bytes (0 on the table backend).
    pub arena_bytes: usize,
    /// Arena bytes retired by re-encodes and removals, not yet
    /// compacted away (0 on the table backend).
    pub arena_waste: usize,
    /// Heap-byte estimate of the interned keyword sets (both backends,
    /// same model).
    pub key_bytes: usize,
}

impl StoreFootprint {
    /// Component-wise sum — per-vertex footprints roll up to one
    /// per-executor row.
    pub fn add(&mut self, other: &StoreFootprint) {
        // Occupancy averages weighted by slab size would need slot
        // counts; the aggregate keeps the minimum, the conservative
        // "worst vertex" view.
        self.bytes_resident += other.bytes_resident;
        self.slab_bytes += other.slab_bytes;
        self.slot_occupancy = self.slot_occupancy.min(other.slot_occupancy);
        self.arena_bytes += other.arena_bytes;
        self.arena_waste += other.arena_waste;
        self.key_bytes += other.key_bytes;
    }

    /// An identity element for [`StoreFootprint::add`].
    pub fn zero() -> StoreFootprint {
        StoreFootprint {
            slot_occupancy: 1.0,
            ..StoreFootprint::default()
        }
    }
}

/// Heap-byte estimate of one interned keyword set, charged identically
/// to both backends (they share the interned `Arc`s): per keyword the
/// string bytes plus `KEYWORD_NODE` for the `String` header and its
/// `BTreeSet` node share, plus `SET_HEADER` for the set and `Arc`
/// headers.
pub fn keyword_set_heap_bytes(set: &KeywordSet) -> usize {
    /// `String` (24) + amortized `BTreeSet` node share (~24).
    const KEYWORD_NODE: usize = 48;
    /// `BTreeSet` root (24) + `Arc` refcount header (16).
    const SET_HEADER: usize = 40;
    SET_HEADER
        + set
            .iter()
            .map(|k| k.as_str().len() + KEYWORD_NODE)
            .sum::<usize>()
}

/// Table-backend estimation constants (measured structures are
/// pointer graphs; see `DESIGN.md` §17).
///
/// Amortized bytes one `BTreeMap` entry costs: key `Arc` (8) + value
/// `Postings` (32) + B-tree node share at ~2/3 fill (~32).
const TABLE_MAP_ENTRY_BYTES: usize = 72;
/// Amortized bytes one `BTreeSet<ObjectId>` element costs: the 8-byte
/// id at ~2/3 node fill plus node headers.
const TABLE_SET_OBJECT_BYTES: usize = 24;

/// One vertex's posting store, dispatching between the two backends.
///
/// The API mirrors [`IndexTable`] exactly; iterator-returning methods
/// yield the same items in the same order on either backend.
#[derive(Debug, Clone)]
pub enum PostingStore {
    /// The `BTreeMap`-backed reference layout.
    Table(IndexTable),
    /// The struct-of-arrays slab layout.
    Slab(SlabStore),
}

impl PostingStore {
    /// An empty store on the given backend.
    pub fn new(backend: StoreBackend) -> Self {
        match backend {
            StoreBackend::Table => PostingStore::Table(IndexTable::new()),
            StoreBackend::Slab => PostingStore::Slab(SlabStore::new()),
        }
    }

    /// The backend this store runs on.
    pub fn backend(&self) -> StoreBackend {
        match self {
            PostingStore::Table(_) => StoreBackend::Table,
            PostingStore::Slab(_) => StoreBackend::Slab,
        }
    }

    /// Adds the entry `⟨keywords, object⟩`. Returns `false` if it was
    /// already present.
    pub fn insert(&mut self, keywords: KeywordSet, object: ObjectId) -> bool {
        match self {
            PostingStore::Table(t) => t.insert(keywords, object),
            PostingStore::Slab(s) => s.insert(keywords, object),
        }
    }

    /// [`PostingStore::insert`] for an already-interned keyword set.
    pub fn insert_arc(&mut self, keywords: Arc<KeywordSet>, object: ObjectId) -> bool {
        match self {
            PostingStore::Table(t) => t.insert_arc(keywords, object),
            PostingStore::Slab(s) => s.insert_arc(keywords, object),
        }
    }

    /// Removes the entry `⟨keywords, object⟩`. Returns `false` if it
    /// was absent.
    pub fn remove(&mut self, keywords: &KeywordSet, object: ObjectId) -> bool {
        match self {
            PostingStore::Table(t) => t.remove(keywords, object),
            PostingStore::Slab(s) => s.remove(keywords, object),
        }
    }

    /// The objects indexed under exactly `keywords` (pin-search
    /// source).
    pub fn objects_with<'a>(&'a self, keywords: &KeywordSet) -> ObjectsIter<'a> {
        match self {
            PostingStore::Table(t) => ObjectsIter::Table(t.objects_with(keywords)),
            PostingStore::Slab(s) => ObjectsIter::Slab(s.objects_with(keywords)),
        }
    }

    /// All entries `⟨K', O⟩` with `K' ⊇ query`, signature prefilter on.
    pub fn superset_entries<'a>(&'a self, query: &'a KeywordSet) -> EntriesIter<'a> {
        match self {
            PostingStore::Table(t) => EntriesIter::Table(t.superset_entries(query)),
            PostingStore::Slab(s) => EntriesIter::Slab(s.superset_entries(query)),
        }
    }

    /// [`PostingStore::superset_entries`] with the query signature
    /// precomputed (`qsig = 0` disables the prefilter).
    pub fn superset_entries_sig<'a>(&'a self, query: &'a KeywordSet, qsig: u64) -> EntriesIter<'a> {
        match self {
            PostingStore::Table(t) => EntriesIter::Table(t.superset_entries_sig(query, qsig)),
            PostingStore::Slab(s) => EntriesIter::Slab(s.superset_entries_sig(query, qsig)),
        }
    }

    /// The baseline scan with no signature prefilter.
    pub fn superset_entries_unfiltered<'a>(&'a self, query: &'a KeywordSet) -> EntriesIter<'a> {
        match self {
            PostingStore::Table(t) => EntriesIter::Table(t.superset_entries_unfiltered(query)),
            PostingStore::Slab(s) => EntriesIter::Slab(s.superset_entries_unfiltered(query)),
        }
    }

    /// OR of every entry's [`KeywordSet::signature`].
    pub fn union_signature(&self) -> u64 {
        match self {
            PostingStore::Table(t) => t.union_signature(),
            PostingStore::Slab(s) => s.union_signature(),
        }
    }

    /// Number of distinct keyword sets.
    pub fn keyword_set_count(&self) -> usize {
        match self {
            PostingStore::Table(t) => t.keyword_set_count(),
            PostingStore::Slab(s) => s.keyword_set_count(),
        }
    }

    /// Total number of indexed objects.
    pub fn object_count(&self) -> usize {
        match self {
            PostingStore::Table(t) => t.object_count(),
            PostingStore::Slab(s) => s.object_count(),
        }
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        match self {
            PostingStore::Table(t) => t.is_empty(),
            PostingStore::Slab(s) => s.is_empty(),
        }
    }

    /// Iterates over all `(keyword set, objects)` entries in sorted
    /// keyword-set order.
    pub fn iter(&self) -> EntriesIter<'_> {
        match self {
            PostingStore::Table(t) => EntriesIter::Table(t.iter()),
            PostingStore::Slab(s) => EntriesIter::Slab(s.iter()),
        }
    }

    /// Memory accounting. Slab numbers are measured capacities; table
    /// numbers use the estimation model of `DESIGN.md` §17 (both
    /// charge the shared interned keyword sets identically, so the
    /// comparison isolates the container layout).
    pub fn footprint(&self) -> StoreFootprint {
        match self {
            PostingStore::Table(t) => {
                let key_bytes: usize = t.iter().map(|(k, _)| keyword_set_heap_bytes(k)).sum();
                StoreFootprint {
                    bytes_resident: std::mem::size_of::<IndexTable>()
                        + t.keyword_set_count() * TABLE_MAP_ENTRY_BYTES
                        + t.object_count() * TABLE_SET_OBJECT_BYTES
                        + key_bytes,
                    slab_bytes: 0,
                    slot_occupancy: 1.0,
                    arena_bytes: 0,
                    arena_waste: 0,
                    key_bytes,
                }
            }
            PostingStore::Slab(s) => s.footprint(),
        }
    }
}

/// Posting iterator of one entry, either backend. Yields `ObjectId`s
/// in ascending order.
#[derive(Debug, Clone)]
pub enum ObjectsIter<'a> {
    /// Copied out of a `BTreeSet`.
    Table(TableObjects<'a>),
    /// Decoded off the arena.
    Slab(DeltaIter<'a>),
}

impl Iterator for ObjectsIter<'_> {
    type Item = ObjectId;

    fn next(&mut self) -> Option<ObjectId> {
        match self {
            ObjectsIter::Table(it) => it.next(),
            ObjectsIter::Slab(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ObjectsIter::Table(it) => it.size_hint(),
            ObjectsIter::Slab(it) => it.size_hint(),
        }
    }
}

/// Entry iterator over either backend, in sorted keyword-set order.
#[derive(Debug)]
pub enum EntriesIter<'a> {
    /// Walking the `BTreeMap`.
    Table(SupersetEntries<'a>),
    /// Walking sorted slab hits.
    Slab(SlabEntries<'a>),
}

impl<'a> Iterator for EntriesIter<'a> {
    type Item = (&'a Arc<KeywordSet>, ObjectsIter<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            EntriesIter::Table(it) => it.next().map(|(k, o)| (k, ObjectsIter::Table(o))),
            EntriesIter::Slab(it) => it.next().map(|(k, o)| (k, ObjectsIter::Slab(o))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn backend_parses_and_prints() {
        assert_eq!(StoreBackend::parse("table"), Some(StoreBackend::Table));
        assert_eq!(StoreBackend::parse("slab"), Some(StoreBackend::Slab));
        assert_eq!(StoreBackend::parse("btree"), None);
        assert_eq!(StoreBackend::Slab.name(), "slab");
        assert_eq!(StoreBackend::default(), StoreBackend::Table);
    }

    /// The two backends answer identically on a small fixed script —
    /// the cheap always-on cousin of the proptest oracle.
    #[test]
    fn backends_agree_on_a_fixed_script() {
        let mut table = PostingStore::new(StoreBackend::Table);
        let mut slab = PostingStore::new(StoreBackend::Slab);
        let script = [
            ("a b", 1u64),
            ("a b c", 2),
            ("a b", 7),
            ("x", 3),
            ("a b", 4),
            ("b c", 5),
        ];
        for (kw, id) in script {
            assert_eq!(
                table.insert(set(kw), oid(id)),
                slab.insert(set(kw), oid(id))
            );
        }
        assert_eq!(
            table.remove(&set("a b"), oid(7)),
            slab.remove(&set("a b"), oid(7))
        );
        for q in ["a b", "a", "x", "absent", ""] {
            let query = if q.is_empty() {
                KeywordSet::new()
            } else {
                set(q)
            };
            let t: Vec<(Arc<KeywordSet>, Vec<ObjectId>)> = table
                .superset_entries(&query)
                .map(|(k, o)| (Arc::clone(k), o.collect()))
                .collect();
            let s: Vec<(Arc<KeywordSet>, Vec<ObjectId>)> = slab
                .superset_entries(&query)
                .map(|(k, o)| (Arc::clone(k), o.collect()))
                .collect();
            assert_eq!(t, s, "superset divergence on {q:?}");
            let tp: Vec<ObjectId> = table.objects_with(&query).collect();
            let sp: Vec<ObjectId> = slab.objects_with(&query).collect();
            assert_eq!(tp, sp, "pin divergence on {q:?}");
        }
        assert_eq!(table.union_signature(), slab.union_signature());
        assert_eq!(table.object_count(), slab.object_count());
        assert_eq!(table.keyword_set_count(), slab.keyword_set_count());
    }

    #[test]
    fn slab_resident_bytes_undercut_the_table_estimate() {
        let mut table = PostingStore::new(StoreBackend::Table);
        let mut slab = PostingStore::new(StoreBackend::Slab);
        for i in 0..500u64 {
            let kw = set(&format!("kw{} shared", i % 50));
            table.insert(kw.clone(), oid(i));
            slab.insert(kw, oid(i));
        }
        let t = table.footprint();
        let s = slab.footprint();
        assert!(
            s.bytes_resident < t.bytes_resident,
            "slab {} >= table {}",
            s.bytes_resident,
            t.bytes_resident
        );
    }

    #[test]
    fn footprint_aggregation_sums() {
        let mut a = StoreFootprint::zero();
        let mut st = PostingStore::new(StoreBackend::Slab);
        st.insert(set("a"), oid(1));
        let fp = st.footprint();
        a.add(&fp);
        a.add(&fp);
        assert_eq!(a.bytes_resident, 2 * fp.bytes_resident);
        assert_eq!(a.arena_bytes, 2 * fp.arena_bytes);
    }
}
