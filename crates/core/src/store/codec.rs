//! Varint delta codec for posting lists.
//!
//! A posting list is a strictly ascending sequence of [`ObjectId`]s.
//! The slab store keeps it as LEB128 varints in a shared byte arena:
//! the first value is the raw id, every later value is the (always
//! ≥ 1) delta to its predecessor. Ascending ids produced by bulk loads
//! encode to 1–2 bytes per object instead of the 8-byte word (plus
//! tree-node overhead) the `BTreeSet` backend pays.
//!
//! Because `ObjectId`'s derived `Ord` is the order of its raw `u64`,
//! decoding yields exactly the ascending sequence a
//! `BTreeSet<ObjectId>` iteration would — the byte-identical-parity
//! contract of [`crate::store`] rests on this.

use hyperdex_dht::ObjectId;

/// Appends `v` to `buf` as an LEB128 varint (7 payload bits per byte,
/// high bit = continuation). Returns the number of bytes written.
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) -> usize {
    let mut written = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        written += 1;
        if v == 0 {
            buf.push(byte);
            return written;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one varint off the front of `bytes`, advancing the slice.
///
/// The arena only ever hands out ranges it encoded itself, so a
/// truncated varint is a store bug; debug builds catch it on the
/// slice index.
pub(crate) fn read_varint(bytes: &mut &[u8]) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[0];
        *bytes = &bytes[1..];
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Encodes the ascending ids `ids` into `buf`, returning the encoded
/// byte length.
pub(crate) fn encode_list(buf: &mut Vec<u8>, ids: &[u64]) -> usize {
    let mut written = 0;
    let mut prev = 0u64;
    for (i, &id) in ids.iter().enumerate() {
        let delta = if i == 0 { id } else { id - prev };
        written += push_varint(buf, delta);
        prev = id;
    }
    written
}

/// Decodes `count` delta-encoded ids from `bytes` into `out`
/// (ascending raw values, appended).
pub(crate) fn decode_into(mut bytes: &[u8], count: u32, out: &mut Vec<u64>) {
    let mut prev = 0u64;
    for i in 0..count {
        let delta = read_varint(&mut bytes);
        let id = if i == 0 { delta } else { prev + delta };
        out.push(id);
        prev = id;
    }
}

/// Streaming decoder over one encoded posting list — the slab-backend
/// counterpart of the `BTreeSet` posting iterator. Yields `ObjectId`s
/// in ascending order without materializing the list.
#[derive(Debug, Clone)]
pub struct DeltaIter<'a> {
    bytes: &'a [u8],
    prev: u64,
    remaining: u32,
    first: bool,
}

impl<'a> DeltaIter<'a> {
    /// A decoder over `count` ids encoded in `bytes`.
    pub(crate) fn new(bytes: &'a [u8], count: u32) -> Self {
        DeltaIter {
            bytes,
            prev: 0,
            remaining: count,
            first: true,
        }
    }

    /// An exhausted decoder (missing entry / short-circuited lookup).
    pub(crate) fn empty() -> Self {
        DeltaIter::new(&[], 0)
    }
}

impl Iterator for DeltaIter<'_> {
    type Item = ObjectId;

    fn next(&mut self) -> Option<ObjectId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let delta = read_varint(&mut self.bytes);
        let id = if self.first {
            self.first = false;
            delta
        } else {
            self.prev + delta
        };
        self.prev = id;
        Some(ObjectId::from_raw(id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DeltaIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            let n = push_varint(&mut buf, v);
            assert_eq!(n, buf.len());
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice), v);
            assert!(slice.is_empty(), "decoder consumed exactly one varint");
        }
    }

    #[test]
    fn list_round_trips_and_stays_ascending() {
        let ids = [3u64, 4, 100, 10_000, 1 << 40];
        let mut buf = Vec::new();
        let len = encode_list(&mut buf, &ids);
        assert_eq!(len, buf.len());
        let mut out = Vec::new();
        decode_into(&buf, ids.len() as u32, &mut out);
        assert_eq!(out, ids);
        let decoded: Vec<u64> = DeltaIter::new(&buf, ids.len() as u32)
            .map(ObjectId::raw)
            .collect();
        assert_eq!(decoded, ids);
    }

    #[test]
    fn dense_ascending_ids_cost_one_byte_each_after_the_first() {
        let ids: Vec<u64> = (1000..1100).collect();
        let mut buf = Vec::new();
        encode_list(&mut buf, &ids);
        assert_eq!(buf.len(), 2 + 99, "2-byte head + 1-byte deltas");
    }

    #[test]
    fn empty_iter_yields_nothing() {
        assert_eq!(DeltaIter::empty().count(), 0);
    }
}
