//! The struct-of-arrays slab posting store.
//!
//! One [`SlabStore`] replaces one [`IndexTable`](crate::index::IndexTable):
//! the per-vertex table of `⟨keyword_set, {σ₁…σₙ}⟩` entries. Instead of
//! a `BTreeMap` of per-entry `BTreeSet`s, the slab keeps three parallel
//! arrays indexed by *slot*:
//!
//! * `sigs` — the 64-bit keyword-set signatures, one contiguous slab.
//!   The PR 4 signature prefilter becomes a tight linear pass over this
//!   array; no pointers are chased until a signature passes.
//! * `keys` — the interned `Arc<KeywordSet>` per slot (`None` =
//!   tombstone).
//! * `posts` — `(offset, len, count, last)` descriptors into the byte
//!   arena holding each slot's varint delta-encoded object ids
//!   ([`crate::store::codec`]).
//!
//! Mutation appends: growing a list whose bytes sit at the arena tail
//! extends in place; anywhere else re-encodes at the tail and retires
//! the old range as *waste*. Deleting a last object tombstones the
//! slot. Both kinds of garbage are bounded by [`SlabStore::compact`],
//! triggered automatically once waste crosses a threshold.
//!
//! # Parity contract
//!
//! Every query answers **byte-identically** to `IndexTable`: scans
//! collect the signature-passing slots, sort them by keyword set (the
//! `BTreeMap` iteration order), and confirm with
//! [`KeywordSet::is_superset`]; exact lookups confirm with equality.
//! The property oracle in `tests/store_parity.rs` drives both backends
//! through random interleavings to hold this line.

use std::sync::Arc;

use hyperdex_dht::ObjectId;

use crate::keyword::KeywordSet;
use crate::store::codec::{decode_into, encode_list, push_varint, DeltaIter};
use crate::store::{keyword_set_heap_bytes, StoreFootprint};

/// Descriptor of one slot's encoded posting list in the arena.
#[derive(Debug, Clone, Copy, Default)]
struct PostingList {
    /// Byte offset of the encoded list in the arena.
    off: u32,
    /// Encoded byte length.
    len: u32,
    /// Number of object ids in the list.
    count: u32,
    /// Raw value of the largest (= last) id; gates the fast append.
    last: u64,
}

/// Compact once dead slots outnumber live ones beyond this floor.
const TOMBSTONE_FLOOR: usize = 32;
/// Compact once retired arena bytes exceed half the arena beyond this
/// floor.
const WASTE_FLOOR: usize = 4096;

/// A struct-of-arrays posting store for one hypercube vertex.
#[derive(Debug, Clone, Default)]
pub struct SlabStore {
    /// The contiguous signature slab (0 for tombstoned slots).
    sigs: Vec<u64>,
    /// Interned keyword set per slot; `None` marks a tombstone.
    keys: Vec<Option<Arc<KeywordSet>>>,
    /// Posting-list descriptors, parallel to `sigs`/`keys`.
    posts: Vec<PostingList>,
    /// Varint delta-encoded object ids, all slots back to back.
    arena: Vec<u8>,
    /// Arena bytes retired by re-encodes and removals.
    arena_waste: usize,
    /// OR of every live slot's signature (kept exact on removal).
    union_sig: u64,
    /// Live (non-tombstone) slot count.
    live: usize,
    /// Total indexed objects across all slots.
    objects: usize,
    /// Heap-byte estimate of the live interned keyword sets.
    key_bytes: usize,
    /// Reused decode buffer for mutations.
    scratch: Vec<u64>,
}

impl SlabStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the entry `⟨keywords, object⟩`. Returns `false` if it was
    /// already present.
    pub fn insert(&mut self, keywords: KeywordSet, object: ObjectId) -> bool {
        let sig = keywords.signature();
        match self.find_slot(&keywords, sig) {
            Some(slot) => self.push_object(slot, object),
            None => self.insert_new(Arc::new(keywords), sig, object),
        }
    }

    /// [`SlabStore::insert`] for an already-interned keyword set.
    pub fn insert_arc(&mut self, keywords: Arc<KeywordSet>, object: ObjectId) -> bool {
        let sig = keywords.signature();
        match self.find_slot(&keywords, sig) {
            Some(slot) => self.push_object(slot, object),
            None => self.insert_new(keywords, sig, object),
        }
    }

    /// Removes the entry `⟨keywords, object⟩`. Returns `false` if it
    /// was absent.
    pub fn remove(&mut self, keywords: &KeywordSet, object: ObjectId) -> bool {
        let sig = keywords.signature();
        let Some(slot) = self.find_slot(keywords, sig) else {
            return false;
        };
        let pl = self.posts[slot];
        let mut ids = std::mem::take(&mut self.scratch);
        ids.clear();
        decode_into(
            &self.arena[pl.off as usize..(pl.off + pl.len) as usize],
            pl.count,
            &mut ids,
        );
        let removed = match ids.binary_search(&object.raw()) {
            Err(_) => false,
            Ok(pos) => {
                ids.remove(pos);
                self.objects -= 1;
                if ids.is_empty() {
                    self.kill_slot(slot);
                } else {
                    self.reencode(slot, &ids);
                }
                true
            }
        };
        self.scratch = ids;
        if removed {
            self.maybe_compact();
        }
        removed
    }

    /// The objects indexed under exactly `keywords` (pin-search
    /// source), with the union-signature short-circuit of the table
    /// backend.
    pub fn objects_with<'a>(&'a self, keywords: &KeywordSet) -> DeltaIter<'a> {
        let qsig = keywords.signature();
        if qsig & self.union_sig != qsig {
            return DeltaIter::empty();
        }
        match self.find_slot(keywords, qsig) {
            Some(slot) => self.list_iter(slot),
            None => DeltaIter::empty(),
        }
    }

    /// All entries `⟨K', O⟩` with `K' ⊇ query`, signature prefilter on.
    pub fn superset_entries<'a>(&'a self, query: &'a KeywordSet) -> SlabEntries<'a> {
        self.superset_entries_sig(query, query.signature())
    }

    /// [`SlabStore::superset_entries`] with the query signature
    /// precomputed (`qsig = 0` disables the prefilter — the unfiltered
    /// parity-reference scan).
    pub fn superset_entries_sig<'a>(&'a self, query: &'a KeywordSet, qsig: u64) -> SlabEntries<'a> {
        let hits = if qsig & self.union_sig != qsig {
            // Whole-store short-circuit, as on the table backend.
            Vec::new()
        } else if qsig == 0 {
            self.live_slots_sorted()
        } else {
            // The tight linear pass: one branch per u64, no pointer
            // chased until a signature covers the query's.
            let mut hits: Vec<u32> = self
                .sigs
                .iter()
                .enumerate()
                .filter(|&(_, &sig)| sig & qsig == qsig)
                .map(|(slot, _)| slot as u32)
                .collect();
            self.sort_by_key_order(&mut hits);
            hits
        };
        SlabEntries {
            store: self,
            query: Some(query),
            hits: hits.into_iter(),
        }
    }

    /// The baseline scan with no signature prefilter.
    pub fn superset_entries_unfiltered<'a>(&'a self, query: &'a KeywordSet) -> SlabEntries<'a> {
        self.superset_entries_sig(query, 0)
    }

    /// OR of every live slot's signature.
    pub fn union_signature(&self) -> u64 {
        self.union_sig
    }

    /// Number of distinct keyword sets (live slots).
    pub fn keyword_set_count(&self) -> usize {
        self.live
    }

    /// Total number of indexed objects.
    pub fn object_count(&self) -> usize {
        self.objects
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over all `(keyword set, objects)` entries in sorted
    /// keyword-set order — the `BTreeMap` iteration order of the table
    /// backend.
    pub fn iter(&self) -> SlabEntries<'_> {
        SlabEntries {
            store: self,
            query: None,
            hits: self.live_slots_sorted().into_iter(),
        }
    }

    /// Memory accounting: measured buffer capacities plus the shared
    /// keyword-heap estimate (see [`crate::store::keyword_set_heap_bytes`]).
    pub fn footprint(&self) -> StoreFootprint {
        let slab_bytes = self.sigs.capacity() * std::mem::size_of::<u64>();
        let resident = std::mem::size_of::<Self>()
            + slab_bytes
            + self.keys.capacity() * std::mem::size_of::<Option<Arc<KeywordSet>>>()
            + self.posts.capacity() * std::mem::size_of::<PostingList>()
            + self.arena.capacity()
            + self.scratch.capacity() * std::mem::size_of::<u64>()
            + self.key_bytes;
        StoreFootprint {
            bytes_resident: resident,
            slab_bytes,
            slot_occupancy: if self.keys.is_empty() {
                1.0
            } else {
                self.live as f64 / self.keys.len() as f64
            },
            arena_bytes: self.arena.capacity(),
            arena_waste: self.arena_waste,
            key_bytes: self.key_bytes,
        }
    }

    /// Rebuilds every array with tombstones and retired arena ranges
    /// dropped. Slot order (hence nothing query-visible) is preserved.
    pub fn compact(&mut self) {
        let mut sigs = Vec::with_capacity(self.live);
        let mut keys = Vec::with_capacity(self.live);
        let mut posts = Vec::with_capacity(self.live);
        let mut arena =
            Vec::with_capacity(self.arena.len() - self.arena_waste.min(self.arena.len()));
        for slot in 0..self.keys.len() {
            let Some(key) = self.keys[slot].take() else {
                continue;
            };
            let pl = self.posts[slot];
            let off = arena.len() as u32;
            arena.extend_from_slice(&self.arena[pl.off as usize..(pl.off + pl.len) as usize]);
            sigs.push(self.sigs[slot]);
            keys.push(Some(key));
            posts.push(PostingList { off, ..pl });
        }
        self.sigs = sigs;
        self.keys = keys;
        self.posts = posts;
        self.arena = arena;
        self.arena_waste = 0;
    }

    /// The slot holding exactly `keywords`, if any: linear signature
    /// scan (equal sets have equal signatures) confirmed by equality.
    fn find_slot(&self, keywords: &KeywordSet, sig: u64) -> Option<usize> {
        self.sigs.iter().enumerate().find_map(|(slot, &s)| {
            if s == sig && self.keys[slot].as_deref() == Some(keywords) {
                Some(slot)
            } else {
                None
            }
        })
    }

    /// Appends a brand-new slot for `keywords`.
    fn insert_new(&mut self, keywords: Arc<KeywordSet>, sig: u64, object: ObjectId) -> bool {
        let off = u32::try_from(self.arena.len()).expect("posting arena exceeds 4 GiB");
        let len = push_varint(&mut self.arena, object.raw()) as u32;
        self.key_bytes += keyword_set_heap_bytes(&keywords);
        self.sigs.push(sig);
        self.keys.push(Some(keywords));
        self.posts.push(PostingList {
            off,
            len,
            count: 1,
            last: object.raw(),
        });
        self.union_sig |= sig;
        self.live += 1;
        self.objects += 1;
        true
    }

    /// Adds `object` to an existing slot. Returns `false` on duplicate.
    fn push_object(&mut self, slot: usize, object: ObjectId) -> bool {
        let pl = self.posts[slot];
        let raw = object.raw();
        if raw > pl.last {
            // Above the current maximum: provably absent, no decode.
            if (pl.off + pl.len) as usize == self.arena.len() {
                // The list already sits at the arena tail — extend it.
                let added = push_varint(&mut self.arena, raw - pl.last) as u32;
                let p = &mut self.posts[slot];
                p.len += added;
                p.count += 1;
                p.last = raw;
            } else {
                // Relocate to the tail, then extend.
                let start = self.arena.len();
                u32::try_from(start + pl.len as usize).expect("posting arena exceeds 4 GiB");
                self.arena
                    .extend_from_within(pl.off as usize..(pl.off + pl.len) as usize);
                push_varint(&mut self.arena, raw - pl.last);
                self.arena_waste += pl.len as usize;
                let p = &mut self.posts[slot];
                p.off = start as u32;
                p.len = (self.arena.len() - start) as u32;
                p.count += 1;
                p.last = raw;
            }
            self.objects += 1;
            self.maybe_compact();
            return true;
        }
        // At or below the maximum: decode, check membership, re-encode.
        let mut ids = std::mem::take(&mut self.scratch);
        ids.clear();
        decode_into(
            &self.arena[pl.off as usize..(pl.off + pl.len) as usize],
            pl.count,
            &mut ids,
        );
        let inserted = match ids.binary_search(&raw) {
            Ok(_) => false,
            Err(pos) => {
                ids.insert(pos, raw);
                self.reencode(slot, &ids);
                self.objects += 1;
                true
            }
        };
        self.scratch = ids;
        if inserted {
            self.maybe_compact();
        }
        inserted
    }

    /// Re-encodes a slot's (non-empty, ascending) ids at the arena
    /// tail, retiring the old range.
    fn reencode(&mut self, slot: usize, ids: &[u64]) {
        let pl = self.posts[slot];
        self.arena_waste += pl.len as usize;
        let start = self.arena.len();
        let len = encode_list(&mut self.arena, ids);
        u32::try_from(start + len).expect("posting arena exceeds 4 GiB");
        self.posts[slot] = PostingList {
            off: start as u32,
            len: len as u32,
            count: ids.len() as u32,
            last: *ids.last().expect("reencode of a non-empty list"),
        };
    }

    /// Tombstones a slot whose last object was removed.
    fn kill_slot(&mut self, slot: usize) {
        let pl = self.posts[slot];
        self.arena_waste += pl.len as usize;
        if let Some(key) = self.keys[slot].take() {
            self.key_bytes -= keyword_set_heap_bytes(&key);
        }
        self.sigs[slot] = 0;
        self.posts[slot] = PostingList::default();
        self.live -= 1;
        // Other slots may still cover the departed bits; tombstones
        // carry signature 0, so the OR over the slab stays exact.
        self.union_sig = self.sigs.iter().fold(0, |m, &s| m | s);
    }

    /// Compacts once tombstones or retired arena bytes dominate.
    fn maybe_compact(&mut self) {
        let dead = self.keys.len() - self.live;
        let dead_heavy = dead > TOMBSTONE_FLOOR && dead * 2 > self.keys.len();
        let waste_heavy = self.arena_waste > WASTE_FLOOR && self.arena_waste * 2 > self.arena.len();
        if dead_heavy || waste_heavy {
            self.compact();
        }
    }

    /// All live slots, sorted by keyword set.
    fn live_slots_sorted(&self) -> Vec<u32> {
        let mut slots: Vec<u32> = (0..self.keys.len() as u32)
            .filter(|&slot| self.keys[slot as usize].is_some())
            .collect();
        self.sort_by_key_order(&mut slots);
        slots
    }

    /// Sorts live slot indices into keyword-set order (the table
    /// backend's `BTreeMap` iteration order).
    fn sort_by_key_order(&self, slots: &mut [u32]) {
        slots.sort_unstable_by(|&a, &b| {
            let ka = self.keys[a as usize].as_ref().expect("sorting a live slot");
            let kb = self.keys[b as usize].as_ref().expect("sorting a live slot");
            ka.cmp(kb)
        });
    }

    /// The posting iterator of one live slot.
    fn list_iter(&self, slot: usize) -> DeltaIter<'_> {
        let pl = self.posts[slot];
        DeltaIter::new(
            &self.arena[pl.off as usize..(pl.off + pl.len) as usize],
            pl.count,
        )
    }
}

/// Iterator over slab entries in keyword-set order, optionally
/// confirmed against a superset query — the named counterpart of the
/// table backend's entry iterators.
#[derive(Debug)]
pub struct SlabEntries<'a> {
    store: &'a SlabStore,
    /// `Some` = confirm `K' ⊇ query` before yielding; `None` = plain
    /// iteration.
    query: Option<&'a KeywordSet>,
    hits: std::vec::IntoIter<u32>,
}

impl<'a> Iterator for SlabEntries<'a> {
    type Item = (&'a Arc<KeywordSet>, DeltaIter<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let slot = self.hits.next()? as usize;
            let Some(key) = self.store.keys[slot].as_ref() else {
                continue;
            };
            if let Some(query) = self.query {
                if !key.is_superset(query) {
                    continue;
                }
            }
            return Some((key, self.store.list_iter(slot)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn entries_with_same_set_combine() {
        let mut st = SlabStore::new();
        assert!(st.insert(set("a b"), oid(1)));
        assert!(st.insert(set("a b"), oid(2)));
        assert!(!st.insert(set("a b"), oid(1)), "duplicate entry");
        assert_eq!(st.keyword_set_count(), 1);
        assert_eq!(st.object_count(), 2);
    }

    #[test]
    fn out_of_order_inserts_come_back_sorted() {
        let mut st = SlabStore::new();
        for id in [9u64, 2, 7, 1, 8] {
            st.insert(set("k"), oid(id));
        }
        let ids: Vec<u64> = st.objects_with(&set("k")).map(ObjectId::raw).collect();
        assert_eq!(ids, vec![1, 2, 7, 8, 9]);
    }

    #[test]
    fn remove_tombstones_and_union_follows() {
        let mut st = SlabStore::new();
        st.insert(set("a"), oid(1));
        st.insert(set("b c"), oid(2));
        assert!(st.remove(&set("a"), oid(1)));
        assert!(!st.remove(&set("a"), oid(1)));
        assert_eq!(st.keyword_set_count(), 1);
        assert_eq!(st.union_signature(), set("b c").signature());
        assert!(st.remove(&set("b c"), oid(2)));
        assert!(st.is_empty());
        assert_eq!(st.union_signature(), 0);
    }

    #[test]
    fn superset_scan_is_sorted_and_confirmed() {
        let mut st = SlabStore::new();
        st.insert(set("a b"), oid(1));
        st.insert(set("a b c"), oid(2));
        st.insert(set("x y"), oid(3));
        let query = set("a b");
        let keys: Vec<Arc<KeywordSet>> = st
            .superset_entries(&query)
            .map(|(k, _)| Arc::clone(k))
            .collect();
        assert_eq!(keys.len(), 2);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "entries come back in keyword-set order");
        assert_eq!(st.superset_entries(&KeywordSet::new()).count(), 3);
    }

    #[test]
    fn compaction_preserves_answers() {
        let mut st = SlabStore::new();
        for i in 0..200u64 {
            st.insert(set(&format!("kw{}", i % 10)), oid(i));
        }
        for i in (0..200u64).step_by(2) {
            st.remove(&set(&format!("kw{}", i % 10)), oid(i));
        }
        st.compact();
        assert_eq!(st.object_count(), 100);
        assert_eq!(st.footprint().arena_waste, 0);
        let ids: Vec<u64> = st.objects_with(&set("kw1")).map(ObjectId::raw).collect();
        let expect: Vec<u64> = (0..200).filter(|i| i % 10 == 1 && i % 2 == 1).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn footprint_tracks_waste_and_occupancy() {
        let mut st = SlabStore::new();
        st.insert(set("a"), oid(2));
        st.insert(set("b"), oid(1));
        assert!((st.footprint().slot_occupancy - 1.0).abs() < f64::EPSILON);
        st.remove(&set("a"), oid(2));
        let fp = st.footprint();
        assert!(fp.slot_occupancy < 1.0);
        assert!(fp.arena_waste > 0);
        assert!(fp.bytes_resident > 0);
    }
}
