//! The vertex→DHT mapping `g` (§3.2).
//!
//! The hypercube is conceptual: each logical vertex is played by a
//! physical DHT node. `g` hashes the vertex onto the identifier ring;
//! the ring's surrogate rule then picks the live node. When `r` is
//! large relative to the node count, many vertices share one physical
//! node (load balanced by the uniform hash); when `r` is small, only a
//! subset of physical nodes serve as index nodes — the paper's leeway
//! for "selecting stable/powerful nodes".

use hyperdex_dht::keyhash::stable_hash_u64;
use hyperdex_dht::{NodeId, Ring};
use hyperdex_hypercube::Vertex;

/// Seed-space tag separating `g` from other hash families.
const VERTEX_MAP_TAG: u64 = 0x474D_4150; // "GMAP"

/// The uniform mapping from hypercube vertices to ring keys.
///
/// # Example
///
/// ```
/// use hyperdex_core::VertexMap;
/// use hyperdex_hypercube::{Shape, Vertex};
///
/// let map = VertexMap::new(0);
/// let shape = Shape::new(10)?;
/// let v = Vertex::from_bits(shape, 0b1010)?;
/// assert_eq!(map.ring_key(v), map.ring_key(v), "deterministic");
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexMap {
    seed: u64,
}

impl VertexMap {
    /// Creates a mapping with the given hash-family seed.
    pub const fn new(seed: u64) -> Self {
        VertexMap { seed }
    }

    /// The ring key `g(v)` for a vertex.
    ///
    /// The vertex's shape participates in the hash, so the same bit
    /// pattern in different-dimension hypercubes maps independently
    /// (needed by decomposed indexes sharing one ring).
    pub fn ring_key(self, vertex: Vertex) -> NodeId {
        let mixed = vertex.bits() ^ (u64::from(vertex.shape().r()) << 56);
        NodeId::from_raw(stable_hash_u64(mixed, self.seed ^ VERTEX_MAP_TAG))
    }

    /// The live physical node playing `vertex`: `S(g(v))`.
    ///
    /// Returns `None` on an empty ring.
    pub fn physical_node(self, vertex: Vertex, ring: &Ring) -> Option<NodeId> {
        ring.surrogate(self.ring_key(vertex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_hypercube::Shape;

    fn v(r: u8, bits: u64) -> Vertex {
        Vertex::from_bits(Shape::new(r).unwrap(), bits).unwrap()
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = VertexMap::new(1);
        let b = VertexMap::new(2);
        let vx = v(10, 0b1100);
        assert_eq!(a.ring_key(vx), a.ring_key(vx));
        assert_ne!(a.ring_key(vx), b.ring_key(vx));
    }

    #[test]
    fn different_shapes_map_independently() {
        let m = VertexMap::new(0);
        assert_ne!(m.ring_key(v(10, 0b11)), m.ring_key(v(12, 0b11)));
    }

    #[test]
    fn spreads_vertices_over_ring() {
        // All 1024 vertices of H_10 should spread over the ring rather
        // than clump: check both halves of the id space get a fair share.
        let m = VertexMap::new(0);
        let half = u64::MAX / 2;
        let low = (0..1024u64)
            .filter(|&bits| m.ring_key(v(10, bits)).raw() < half)
            .count();
        assert!((400..=624).contains(&low), "low half got {low}/1024");
    }

    #[test]
    fn physical_node_uses_surrogate() {
        let m = VertexMap::new(0);
        let vx = v(8, 0b101);
        let key = m.ring_key(vx);
        let ring: Ring = [NodeId::from_raw(0), NodeId::from_raw(u64::MAX / 2)]
            .into_iter()
            .collect();
        assert_eq!(m.physical_node(vx, &ring), ring.surrogate(key));
        assert_eq!(m.physical_node(vx, &Ring::new()), None);
    }

    #[test]
    fn many_vertices_to_few_nodes_balances() {
        // r = 12 (4096 vertices) onto 8 physical nodes: every node
        // should serve some vertices, none should dominate.
        let m = VertexMap::new(3);
        let ring: Ring = (0..8u64)
            .map(|i| NodeId::from_raw(hyperdex_dht::keyhash::stable_hash_u64(i, 42)))
            .collect();
        let mut counts = std::collections::HashMap::new();
        for bits in 0..4096u64 {
            let node = m.physical_node(v(12, bits), &ring).unwrap();
            *counts.entry(node).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 8, "every node plays some vertices");
    }
}
