//! Keyword-set interning.
//!
//! Insert-heavy workloads present the same popular keyword sets over
//! and over (Zipf skew — the paper's PCHome trace has a handful of
//! sets covering most of the log). Before interning, every insert
//! minted a fresh `Arc<KeywordSet>` even when the identical set was
//! already indexed somewhere; with two hash cubes (primary +
//! secondary) and replication that multiplied into one string-set
//! allocation per table per call. [`KeywordInterner`] keeps one
//! canonical `Arc` per distinct set, so repeated inserts and
//! cross-replica indexing share a single allocation.

use std::collections::HashSet;
use std::sync::Arc;

use crate::keyword::KeywordSet;

/// A pool of canonical `Arc<KeywordSet>`s, one per distinct set.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use hyperdex_core::{KeywordInterner, KeywordSet};
///
/// let mut interner = KeywordInterner::new();
/// let a = interner.intern(KeywordSet::parse("tvbs news")?);
/// let b = interner.intern(KeywordSet::parse("news tvbs")?);
/// assert!(Arc::ptr_eq(&a, &b), "equal sets share one allocation");
/// assert_eq!(interner.len(), 1);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeywordInterner {
    sets: HashSet<Arc<KeywordSet>>,
}

impl KeywordInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical `Arc` for `set`: a clone of the pooled one if the
    /// set is known, otherwise a fresh allocation that joins the pool.
    pub fn intern(&mut self, set: KeywordSet) -> Arc<KeywordSet> {
        // `Arc<T>: Borrow<T>` lets the probe run without allocating.
        if let Some(existing) = self.sets.get(&set) {
            return Arc::clone(existing);
        }
        let arc = Arc::new(set);
        self.sets.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct sets pooled.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_by_value() {
        let mut pool = KeywordInterner::new();
        let a = pool.intern(KeywordSet::parse("a b").unwrap());
        let b = pool.intern(KeywordSet::parse("b a").unwrap());
        let c = pool.intern(KeywordSet::parse("c").unwrap());
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn empty_pool_reports_empty() {
        let pool = KeywordInterner::new();
        assert!(pool.is_empty());
        assert_eq!(pool.len(), 0);
    }
}
