//! The probabilistic analysis of §3.5 — Equation (1) and dimensioning.
//!
//! `|One(F_h(K))|` for a size-`m` keyword set is the number of occupied
//! buckets when `m` distinct balls land uniformly in `r` buckets.
//! Equation (1) gives its distribution; the expected search cost of a
//! superset query is bounded by `2^{r − |One|}` nodes. §4 further uses
//! these distributions to choose `r`: load balances best when the
//! object distribution over `|One(u)| = x` approaches the node
//! distribution `Binomial(r, ½)`.

/// Binomial coefficient `C(n, k)` as `f64` (exact for the `n ≤ 63`
/// range used here).
fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result = result * f64::from(n - i) / f64::from(i + 1);
    }
    result
}

/// Equation (1): `P(|One(F_h(K))| = j)` for `|K| = m` keywords hashed
/// uniformly into `r` positions.
///
/// Returns 0 outside the feasible range `1 ≤ j ≤ min(r, m)` (or `j = 0`
/// when `m = 0`).
///
/// # Panics
///
/// Panics if `r == 0`.
///
/// # Example
///
/// ```
/// use hyperdex_core::analysis::prob_ones;
///
/// // One keyword always occupies exactly one position.
/// assert!((prob_ones(10, 1, 1) - 1.0).abs() < 1e-12);
/// // Two keywords collide with probability 1/r.
/// assert!((prob_ones(10, 2, 1) - 0.1).abs() < 1e-12);
/// assert!((prob_ones(10, 2, 2) - 0.9).abs() < 1e-12);
/// ```
pub fn prob_ones(r: u32, m: u32, j: u32) -> f64 {
    assert!(r > 0, "hypercube dimension must be positive");
    if m == 0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if j == 0 || j > r.min(m) {
        return 0.0;
    }
    // C(r,j) Σ_{i=0}^{j} (−1)^i C(j,i) ((j−i)/r)^m
    let mut sum = 0.0f64;
    for i in 0..=j {
        let term = binomial(j, i) * (f64::from(j - i) / f64::from(r)).powi(m as i32);
        if i % 2 == 0 {
            sum += term;
        } else {
            sum -= term;
        }
    }
    (binomial(r, j) * sum).max(0.0)
}

/// The expected number of occupied positions `E|One(F_h(K))|`.
///
/// Computed via the closed form `r (1 − (1 − 1/r)^m)`, which equals the
/// Equation-(1) expectation (tested against it).
///
/// # Panics
///
/// Panics if `r == 0`.
pub fn expected_ones(r: u32, m: u32) -> f64 {
    assert!(r > 0, "hypercube dimension must be positive");
    let r_f = f64::from(r);
    r_f * (1.0 - (1.0 - 1.0 / r_f).powi(m as i32))
}

/// The expectation computed directly from Equation (1) —
/// `Σ j · P(|One| = j)`. Primarily a cross-check for [`expected_ones`].
pub fn expected_ones_from_distribution(r: u32, m: u32) -> f64 {
    (0..=r.min(m.max(1)))
        .map(|j| f64::from(j) * prob_ones(r, m, j))
        .sum()
}

/// Worst-case nodes contacted by a superset search whose root has `j`
/// one-bits: the subhypercube size `2^{r−j}` (§3.5).
///
/// # Panics
///
/// Panics if `j > r` or `r > 63`.
pub fn worst_case_nodes(r: u32, j: u32) -> u64 {
    assert!(j <= r, "one-count cannot exceed dimension");
    assert!(r <= 63, "dimension above u64 range");
    1u64 << (r - j)
}

/// Expected *fraction* of the hypercube a size-`m` query may search:
/// `E[2^{−|One|}]` over Equation (1). Approaches `2^{−m}` when `m ≪ r`
/// (the paper's Figure 8 observation).
pub fn expected_search_fraction(r: u32, m: u32) -> f64 {
    (0..=r.min(m.max(1)))
        .map(|j| prob_ones(r, m, j) * 2f64.powi(-(j as i32)))
        .sum()
}

/// The node distribution of Figure 7: the fraction of vertices with
/// `|One(u)| = x`, i.e. `C(r, x) / 2^r`.
pub fn node_fraction(r: u32, x: u32) -> f64 {
    if x > r {
        0.0
    } else {
        binomial(r, x) / 2f64.powi(r as i32)
    }
}

/// The object distribution of Figure 7 for a keyword-set-size
/// distribution `sizes` (pairs of `(m, weight)`, weights summing to 1):
/// the probability an object lands on a vertex with `|One| = x`.
pub fn object_fraction(r: u32, sizes: &[(u32, f64)], x: u32) -> f64 {
    sizes.iter().map(|&(m, w)| w * prob_ones(r, m, x)).sum()
}

/// Chooses the dimension `r` in `r_range` whose node distribution is
/// closest (total-variation distance) to the object distribution induced
/// by `sizes` — the paper's §4 guidance for picking `r` without
/// experimentation.
///
/// # Panics
///
/// Panics if `r_range` is empty or contains 0.
pub fn recommended_dimension(sizes: &[(u32, f64)], r_range: std::ops::RangeInclusive<u32>) -> u32 {
    let mut best: Option<(f64, u32)> = None;
    for r in r_range {
        let tv: f64 = (0..=r)
            .map(|x| (object_fraction(r, sizes, x) - node_fraction(r, x)).abs())
            .sum::<f64>()
            / 2.0;
        match best {
            Some((best_tv, _)) if best_tv <= tv => {}
            _ => best = Some((tv, r)),
        }
    }
    best.expect("non-empty dimension range").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_simnet::rng::SimRng;

    #[test]
    fn distribution_sums_to_one() {
        for r in [4u32, 8, 10, 16] {
            for m in [1u32, 2, 5, 7, 12] {
                let total: f64 = (0..=r.min(m)).map(|j| prob_ones(r, m, j)).sum();
                assert!((total - 1.0).abs() < 1e-9, "r={r} m={m}: {total}");
            }
        }
    }

    #[test]
    fn single_keyword_is_deterministic() {
        assert_eq!(prob_ones(10, 1, 1), 1.0);
        assert_eq!(prob_ones(10, 1, 2), 0.0);
    }

    #[test]
    fn m_zero_degenerate() {
        assert_eq!(prob_ones(10, 0, 0), 1.0);
        assert_eq!(prob_ones(10, 0, 1), 0.0);
        assert_eq!(expected_ones(10, 0), 0.0);
    }

    #[test]
    fn closed_form_matches_equation_one() {
        for r in [6u32, 10, 14] {
            for m in [1u32, 3, 7, 10, 20] {
                let a = expected_ones(r, m);
                let b = expected_ones_from_distribution(r, m);
                assert!((a - b).abs() < 1e-8, "r={r} m={m}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn equation_one_matches_monte_carlo() {
        // Throw m balls into r buckets many times; compare occupied-count
        // frequencies with Equation (1).
        let (r, m) = (10u32, 7u32);
        let trials = 200_000;
        let mut counts = vec![0u32; (r + 1) as usize];
        let mut rng = SimRng::new(42);
        for _ in 0..trials {
            let mut occupied = 0u64;
            for _ in 0..m {
                occupied |= 1 << rng.gen_range(u64::from(r));
            }
            counts[occupied.count_ones() as usize] += 1;
        }
        for j in 1..=r.min(m) {
            let expected = prob_ones(r, m, j);
            let observed = f64::from(counts[j as usize]) / trials as f64;
            assert!(
                (expected - observed).abs() < 0.005,
                "j={j}: eq1 {expected:.4} vs mc {observed:.4}"
            );
        }
    }

    #[test]
    fn expected_ones_monotone_in_m_and_bounded() {
        let r = 12;
        let mut last = 0.0;
        for m in 1..40 {
            let e = expected_ones(r, m);
            assert!(e > last, "monotone");
            assert!(e < f64::from(r), "bounded by r");
            last = e;
        }
    }

    #[test]
    fn worst_case_matches_subcube_size() {
        assert_eq!(worst_case_nodes(10, 3), 128);
        assert_eq!(worst_case_nodes(10, 10), 1);
        assert_eq!(worst_case_nodes(10, 0), 1024);
    }

    #[test]
    fn search_fraction_approx_2_pow_neg_m() {
        // Paper (§4): for m small relative to r, the searched fraction is
        // ≈ 2^−m. The expectation E[2^−|One|] is tail-sensitive (each
        // collision doubles the weight), so allow a small constant
        // factor; the most likely |One| must still be exactly m.
        for m in 1..=5u32 {
            let frac = expected_search_fraction(12, m);
            let ideal = 2f64.powi(-(m as i32));
            assert!(
                frac >= ideal && frac < ideal * 2.0,
                "m={m}: {frac} vs {ideal}"
            );
        }
    }

    #[test]
    fn node_fractions_sum_to_one() {
        for r in [4u32, 10] {
            let total: f64 = (0..=r).map(|x| node_fraction(r, x)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn object_fraction_mixes_sizes() {
        let sizes = [(1u32, 0.5f64), (3, 0.5)];
        let f = object_fraction(10, &sizes, 1);
        let expect = 0.5 * prob_ones(10, 1, 1) + 0.5 * prob_ones(10, 3, 1);
        assert!((f - expect).abs() < 1e-12);
    }

    #[test]
    fn recommended_dimension_tracks_set_sizes() {
        // Mean set size ~7.3 (the PCHome corpus): the paper found r ≈ 10
        // balances load best. Allow a small neighborhood.
        let sizes: Vec<(u32, f64)> = vec![
            (3, 0.08),
            (5, 0.17),
            (6, 0.20),
            (7, 0.20),
            (8, 0.15),
            (10, 0.12),
            (14, 0.08),
        ];
        let r = recommended_dimension(&sizes, 6..=16);
        assert!(
            (9..=12).contains(&r),
            "expected r near the paper's 10, got {r}"
        );
        // Tiny keyword sets want a smaller cube.
        let small = [(1u32, 0.7f64), (2, 0.3)];
        assert!(recommended_dimension(&small, 2..=16) <= 5);
    }
}
