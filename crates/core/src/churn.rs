//! Live membership, index handoff, and self-healing replication for the
//! message-level protocol simulation.
//!
//! The hypercube of §2–3 is an *overlay*: its `2^r` logical vertices are
//! mapped onto whatever physical nodes currently exist by the underlying
//! DHT's surrogate rule (§2.1). This module makes that mapping **live**.
//! A [`ChurnPlan`](hyperdex_simnet::churn::ChurnPlan) schedules joins,
//! graceful leaves, and crashes of physical hosts; each vertex's primary
//! index table follows its surrogate owner around the identifier ring:
//!
//! * **Graceful leave** — the departing host streams every vertex table
//!   it owns to that vertex's new surrogate in bounded-size
//!   [`KwMsg::HandoffBatch`] messages (stop-and-wait, retransmitted on
//!   timeout). The host stays online until its last batch is
//!   acknowledged, then goes dark.
//! * **Join** — the new host's ownership claims are reconciled at the
//!   next *stabilization round*: every vertex whose believed owner
//!   differs from its ideal surrogate starts a handoff from the former
//!   to the latter.
//! * **Crash** — the host vanishes with its primary tables. The next
//!   stabilization round assigns each orphaned vertex to its new
//!   surrogate (with an empty table), and periodic **anti-entropy
//!   repair** re-pushes the lost postings from the secondary hypercube
//!   (the second hash seed of [`crate::replication`]) in
//!   [`KwMsg::RepairPush`] batches until the diff is empty.
//!
//! While a vertex is mid-handoff, crashed and not yet reassigned, or
//! reassigned but still awaiting repair, it answers nothing: a
//! fault-tolerant search treats it as a *retriable target* — the
//! coordinator's timer fires, the query is retransmitted, and a retry
//! after the handoff (or repair) lands succeeds. A vertex that stays
//! silent past the retry budget is re-delegated or failed over exactly
//! as in §3.4, so every search still returns an exact
//! [`CoverageReport`](crate::sim_protocol::CoverageReport).
//!
//! Handoffs bump a per-vertex *generation* counter; result caches keyed
//! by vertex (see [`crate::cache::FifoCache::bump_generation`]) use it
//! to shed entries recorded under the previous owner.
//!
//! # Limitations
//!
//! Inserts while the target vertex is mid-handoff land in the table that
//! the installing batch stream then overwrites; index the corpus before
//! (or between) churn windows. The secondary cube is the stable replica
//! store — its own churn is out of scope here.
//!
//! # Example
//!
//! ```
//! use hyperdex_core::churn::StabilizationConfig;
//! use hyperdex_core::{FtConfig, KeywordSet, ProtocolSim, RecoveryStrategy};
//! use hyperdex_dht::ObjectId;
//! use hyperdex_simnet::churn::ChurnPlan;
//! use hyperdex_simnet::latency::LatencyModel;
//! use hyperdex_simnet::time::SimTime;
//!
//! let mut sim = ProtocolSim::new(4, 7, LatencyModel::constant(1))?;
//! sim.insert(ObjectId::from_raw(1), KeywordSet::parse("tvbs, news")?)?;
//! let mut plan = ChurnPlan::default();
//! plan.leave_at(SimTime::from_ticks(50), 3); // node 3 departs gracefully
//! sim.enable_churn(&plan, StabilizationConfig::default(), &[1, 2, 3, 4])?;
//! sim.run_churn_to_quiescence();
//! assert!(sim.churn().unwrap().converged());
//! let out = sim.search_fault_tolerant(
//!     &KeywordSet::parse("news")?,
//!     8,
//!     FtConfig::new(RecoveryStrategy::Redelegate),
//! )?;
//! assert_eq!(out.results.len(), 1); // nothing lost to the departure
//! # Ok::<(), hyperdex_core::Error>(())
//! ```

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use hyperdex_dht::{keyhash, NodeId, ObjectId, Ring};
use hyperdex_simnet::churn::{ChurnEvent, ChurnKind, ChurnPlan};
use hyperdex_simnet::net::{EndpointId, NetEvent, TimerId};
use hyperdex_simnet::time::SimTime;

use crate::error::Error;
use crate::keyword::KeywordSet;
use crate::sim_protocol::{KwMsg, ProtocolSim};
use crate::store::PostingStore;

/// High-bit namespace separating churn timer tokens from the search
/// layer's vertex-bits tokens (which are `< 2^16`).
const CHURN_TOKEN_NS: u64 = 1 << 48;
/// Timer kind: a stabilization round is due.
const KIND_STABILIZE: u64 = 1 << 40;
/// Timer kind: an anti-entropy repair round is due.
const KIND_REPAIR: u64 = 2 << 40;
/// Timer kind: retransmit the current batch of the handoff for the
/// vertex in the token's low bits.
const KIND_HANDOFF: u64 = 3 << 40;
/// Timer kind: clock marker used by [`ProtocolSim::run_churn_to`] to
/// advance virtual time to a membership event's instant.
const KIND_MARKER: u64 = 4 << 40;
/// Mask extracting the timer kind from a churn token.
const KIND_MASK: u64 = 0xFF << 40;
/// Mask extracting the vertex bits from a `KIND_HANDOFF` token.
const BITS_MASK: u64 = (1 << 40) - 1;

/// Posting-list entries moved by one handoff or repair batch: interned
/// keyword sets with the objects homed under each.
type EntryBatch = Vec<(Arc<KeywordSet>, Vec<ObjectId>)>;

/// Seed tweak separating vertex ring keys from node ring ids.
const VERTEX_KEY_TWEAK: u64 = 0x7E57_ED00_5EED_0001;
/// Seed tweak for host placement on the identifier ring.
const NODE_KEY_TWEAK: u64 = 0xA11C_E000_0000_0B0B;

/// Tuning for the membership / handoff / repair machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilizationConfig {
    /// Ticks between stabilization rounds (ownership reconciliation).
    pub stabilization_interval: u64,
    /// Ticks between anti-entropy repair rounds.
    pub repair_interval: u64,
    /// Maximum index entries (keyword-set groups) per handoff or repair
    /// batch.
    pub batch_entries: usize,
    /// Ticks before an unacknowledged handoff batch is retransmitted.
    pub handoff_timeout: u64,
    /// Retransmissions per handoff before it is abandoned (the in-flight
    /// postings are then declared lost and left to repair).
    pub max_handoff_retransmits: u32,
}

impl Default for StabilizationConfig {
    fn default() -> Self {
        StabilizationConfig {
            stabilization_interval: 64,
            repair_interval: 64,
            batch_entries: 32,
            handoff_timeout: 24,
            max_handoff_retransmits: 10,
        }
    }
}

impl StabilizationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidChurnConfig`] for zero intervals, zero
    /// batch size, or a zero handoff timeout.
    pub fn validate(&self) -> Result<(), Error> {
        if self.stabilization_interval == 0 {
            return Err(Error::InvalidChurnConfig {
                reason: "stabilization interval must be positive",
            });
        }
        if self.repair_interval == 0 {
            return Err(Error::InvalidChurnConfig {
                reason: "repair interval must be positive",
            });
        }
        if self.batch_entries == 0 {
            return Err(Error::InvalidChurnConfig {
                reason: "handoff batches must hold at least one entry",
            });
        }
        if self.handoff_timeout == 0 {
            return Err(Error::InvalidChurnConfig {
                reason: "handoff retransmit timeout must be positive",
            });
        }
        Ok(())
    }
}

/// Counters for everything the churn machinery did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Joins applied.
    pub joins: u64,
    /// Graceful leaves applied.
    pub leaves: u64,
    /// Crashes applied.
    pub crashes: u64,
    /// Handoffs started (including instant empty-table flips).
    pub handoffs_started: u64,
    /// Handoffs whose table installed at the new owner.
    pub handoffs_completed: u64,
    /// Handoffs abandoned (endpoint death or retransmit budget), their
    /// in-flight postings left to repair.
    pub handoffs_aborted: u64,
    /// Handoff batches installed (first delivery only).
    pub handoff_batches: u64,
    /// Index entries moved by handoff batches.
    pub handoff_entries: u64,
    /// Payload bytes of every handoff batch sent (retransmits included).
    pub handoff_bytes: u64,
    /// Handoff batch retransmissions.
    pub handoff_retransmits: u64,
    /// Repair push messages sent.
    pub repair_pushes: u64,
    /// Index entries restored by repair pushes.
    pub repair_entries: u64,
    /// Vertices whose post-crash diff against the secondary cube
    /// reached empty.
    pub repairs_completed: u64,
    /// Sum over completed repairs of (completion − loss) in ticks.
    pub repair_lag_total: u64,
    /// Worst single repair lag in ticks.
    pub repair_lag_max: u64,
    /// Stabilization rounds executed.
    pub stabilization_rounds: u64,
}

impl ChurnStats {
    /// Mean repair lag in ticks over completed repairs (0 when none).
    pub fn repair_lag_mean(&self) -> f64 {
        if self.repairs_completed == 0 {
            0.0
        } else {
            self.repair_lag_total as f64 / self.repairs_completed as f64
        }
    }
}

/// One in-flight vertex-table transfer (stop-and-wait).
#[derive(Debug)]
struct Handoff {
    /// Streaming host (the former owner).
    src: u64,
    /// Receiving host (the new owner).
    dst: u64,
    /// The table, serialized into bounded batches (keyword sets
    /// interned — retransmits clone pointers, not sets).
    batches: Vec<Vec<(Arc<KeywordSet>, Vec<ObjectId>)>>,
    /// Batches acknowledged so far (== index of the next batch to send).
    acked: usize,
    /// Batches received in order at the destination.
    received: usize,
    /// Destination-side accumulation, installed on the final batch.
    staged: PostingStore,
    /// The final batch was delivered and the table installed; only the
    /// closing ack is outstanding.
    complete: bool,
    /// Retransmissions of the current batch.
    attempts: u32,
    /// The armed retransmit timer, if any.
    timer: Option<TimerId>,
}

/// Live-membership state attached to a [`ProtocolSim`] by
/// [`ProtocolSim::enable_churn`].
#[derive(Debug)]
pub struct ChurnState {
    cfg: StabilizationConfig,
    plan: Vec<ChurnEvent>,
    /// Index of the next unapplied plan event.
    next_event: usize,
    /// True membership: hashed host ids on the identifier ring.
    ring: Ring,
    ring_seed: u64,
    /// Reverse map: ring id → raw host id.
    node_of: BTreeMap<NodeId, u64>,
    /// Host id → its endpoint (dead hosts keep their entry).
    hosts: BTreeMap<u64, EndpointId>,
    /// Currently live host ids.
    live: HashSet<u64>,
    /// Believed owner of each *tracked* vertex, keyed by vertex bits.
    /// Sparse: a vertex appears only once something distinguishes it
    /// from the ideal baseline — it holds postings, is mid-handoff, or
    /// lost its owner to a crash (absent-but-unavailable until the next
    /// stabilization round reassigns it). An untracked vertex is
    /// implicitly owned by its ideal surrogate, so reconciliation cost
    /// scales with the corpus footprint, not `2^r` — churn runs at any
    /// dimension the search layers accept.
    view: BTreeMap<u64, u64>,
    /// Number of logical vertices (`2^r`), the consistency denominator.
    vertex_count: u64,
    /// Vertices that answer nothing (mid-handoff or crashed-unassigned).
    unavailable: HashSet<u64>,
    /// Per-vertex handoff generation (bumped whenever ownership or
    /// repaired content changes; cache invalidation keys off it).
    /// Absent means still at generation zero.
    generations: BTreeMap<u64, u64>,
    /// Active transfers by vertex bits.
    handoffs: BTreeMap<u64, Handoff>,
    /// Vertices whose primary postings were lost, with the loss instant.
    repair_pending: BTreeMap<u64, SimTime>,
    /// Gracefully departing hosts still streaming: host id → transfers
    /// left. The host's endpoint dies when the count reaches zero.
    departing: BTreeMap<u64, usize>,
    stab_armed: bool,
    repair_armed: bool,
    stats: ChurnStats,
}

impl ChurnState {
    fn node_key(&self, node: u64) -> NodeId {
        NodeId::from_raw(keyhash::stable_hash_u64(
            node,
            self.ring_seed ^ NODE_KEY_TWEAK,
        ))
    }

    fn vertex_key(&self, bits: u64) -> NodeId {
        NodeId::from_raw(keyhash::stable_hash_u64(
            bits,
            self.ring_seed ^ VERTEX_KEY_TWEAK,
        ))
    }

    /// Tracks `bits` in the ownership view (at its ideal surrogate) if
    /// it is not already tracked — called when an insert materializes a
    /// table at a previously-empty vertex, preserving the invariant
    /// that every vertex holding postings appears in the view.
    pub(crate) fn track_vertex(&mut self, bits: u64) {
        if !self.view.contains_key(&bits) {
            if let Some(owner) = self.ideal_owner(bits) {
                self.view.insert(bits, owner);
            }
        }
    }

    /// The host that *should* own `bits` under the current membership.
    fn ideal_owner(&self, bits: u64) -> Option<u64> {
        let s = self.ring.surrogate(self.vertex_key(bits))?;
        self.node_of.get(&s).copied()
    }

    /// Every vertex the churn machinery has an opinion about: believed
    /// owners, mid-handoff vertices, crash orphans, pending repairs.
    /// Any vertex outside this set is empty and implicitly owned by its
    /// ideal surrogate.
    fn tracked_vertices(&self) -> std::collections::BTreeSet<u64> {
        let mut tracked: std::collections::BTreeSet<u64> = self.view.keys().copied().collect();
        tracked.extend(self.unavailable.iter().copied());
        tracked.extend(self.repair_pending.keys().copied());
        tracked.extend(self.handoffs.keys().copied());
        tracked
    }

    /// Vertices whose believed owner differs from the ideal surrogate.
    /// Untracked vertices follow the surrogate by construction, so only
    /// the tracked set is consulted.
    fn divergence(&self) -> usize {
        self.tracked_vertices()
            .into_iter()
            .filter(|&bits| self.view.get(&bits).copied() != self.ideal_owner(bits))
            .count()
    }

    /// Counters for everything the churn machinery did so far.
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// Fraction of vertices whose believed owner is the ideal surrogate
    /// *and* that are currently answering queries — the probability a
    /// uniformly random lookup is served by the true owner.
    pub fn consistency(&self) -> f64 {
        // An untracked vertex is empty and served by its ideal
        // surrogate, so it always counts as good; only tracked
        // vertices can be stale or dark.
        let bad = self
            .tracked_vertices()
            .into_iter()
            .filter(|&bits| {
                self.unavailable.contains(&bits)
                    || self.view.get(&bits).copied() != self.ideal_owner(bits)
            })
            .count() as u64;
        (self.vertex_count - bad.min(self.vertex_count)) as f64 / self.vertex_count as f64
    }

    /// Whether the system is fully settled: every plan event applied, no
    /// transfer or repair in flight, every vertex available under its
    /// ideal owner.
    pub fn converged(&self) -> bool {
        self.next_event == self.plan.len()
            && self.handoffs.is_empty()
            && self.repair_pending.is_empty()
            && self.unavailable.is_empty()
            && self.divergence() == 0
    }

    /// Whether vertex `bits` currently answers queries.
    pub fn vertex_available(&self, bits: u64) -> bool {
        !self.unavailable.contains(&bits)
    }

    /// The believed owner (host id) of vertex `bits`. Untracked
    /// vertices are empty and implicitly owned by their ideal
    /// surrogate; `None` means the vertex lost its owner to a crash
    /// and has not been reassigned yet.
    pub fn view_owner(&self, bits: u64) -> Option<u64> {
        match self.view.get(&bits) {
            Some(&owner) => Some(owner),
            None if self.unavailable.contains(&bits) => None,
            None => self.ideal_owner(bits),
        }
    }

    /// The handoff generation of vertex `bits` (bumped on every
    /// ownership change or repair completion).
    pub fn generation(&self, bits: u64) -> u64 {
        self.generations.get(&bits).copied().unwrap_or(0)
    }

    /// Number of currently live hosts.
    pub fn live_nodes(&self) -> usize {
        self.live.len()
    }

    /// Plan events not yet applied.
    pub fn pending_events(&self) -> usize {
        self.plan.len() - self.next_event
    }
}

/// Payload bytes of one batch: 16 per keyword, 8 per object id, 16 of
/// framing per entry.
fn entries_bytes(entries: &[(Arc<KeywordSet>, Vec<ObjectId>)]) -> u64 {
    entries
        .iter()
        .map(|(k, objs)| 16 + 16 * k.len() as u64 + 8 * objs.len() as u64)
        .sum()
}

impl ProtocolSim {
    /// Attaches a churn plan and live-membership state to this
    /// simulation.
    ///
    /// `initial_members` are the host ids alive at time zero; every
    /// vertex's believed owner starts at its ideal surrogate. Events in
    /// `plan` are applied by [`ProtocolSim::run_churn_to`] /
    /// [`ProtocolSim::run_churn_to_quiescence`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidChurnConfig`] if churn is already
    /// enabled, `cfg` fails validation, or `initial_members` is empty.
    /// Any dimension the search layers accept works: ownership
    /// reconciliation walks only the *tracked* vertices (occupied,
    /// mid-handoff, or crash-orphaned), never all `2^r`.
    pub fn enable_churn(
        &mut self,
        plan: &ChurnPlan,
        cfg: StabilizationConfig,
        initial_members: &[u64],
    ) -> Result<(), Error> {
        if self.churn.is_some() {
            return Err(Error::InvalidChurnConfig {
                reason: "churn is already enabled on this simulation",
            });
        }
        cfg.validate()?;
        if initial_members.is_empty() {
            return Err(Error::InvalidChurnConfig {
                reason: "at least one initial member is required",
            });
        }
        let n = self.shape.vertex_count();
        let mut st = ChurnState {
            cfg,
            plan: plan.events().to_vec(),
            next_event: 0,
            ring: Ring::new(),
            ring_seed: self.seed,
            node_of: BTreeMap::new(),
            hosts: BTreeMap::new(),
            live: HashSet::new(),
            view: BTreeMap::new(),
            vertex_count: n,
            unavailable: HashSet::new(),
            generations: BTreeMap::new(),
            handoffs: BTreeMap::new(),
            repair_pending: BTreeMap::new(),
            departing: BTreeMap::new(),
            stab_armed: false,
            repair_armed: false,
            stats: ChurnStats::default(),
        };
        let mut members: Vec<u64> = initial_members.to_vec();
        members.sort_unstable();
        members.dedup();
        for &m in &members {
            add_host(self, &mut st, m);
        }
        // Track only the occupied vertices; everything else follows
        // its ideal surrogate implicitly until postings or faults give
        // churn a reason to care about it.
        for &bits in self.tables.keys() {
            if let Some(owner) = st.ideal_owner(bits) {
                st.view.insert(bits, owner);
            }
        }
        self.churn = Some(Box::new(st));
        Ok(())
    }

    /// The churn state, if [`ProtocolSim::enable_churn`] was called.
    pub fn churn(&self) -> Option<&ChurnState> {
        self.churn.as_deref()
    }

    /// Applies every plan event scheduled at or before `until`, then
    /// drains network events due by then (handoff batches, acks,
    /// stabilization and repair rounds). Later events stay queued.
    pub fn run_churn_to(&mut self, until: SimTime) {
        while self
            .churn
            .as_ref()
            .and_then(|c| c.plan.get(c.next_event))
            .is_some_and(|e| e.at <= until)
        {
            self.apply_next_plan_event();
        }
        while self.net.next_due().is_some_and(|d| d <= until) {
            if let Some(ev) = self.net.step_event() {
                let _ = self.churn_intercept(ev);
            }
        }
    }

    /// Applies the whole remaining plan and drains the network to
    /// quiescence: every handoff completes or aborts, every lost vertex
    /// is reassigned and repaired, stabilization stops re-arming.
    pub fn run_churn_to_quiescence(&mut self) {
        while self
            .churn
            .as_ref()
            .is_some_and(|c| c.next_event < c.plan.len())
        {
            self.apply_next_plan_event();
        }
        while let Some(ev) = self.net.step_event() {
            let _ = self.churn_intercept(ev);
        }
    }

    /// Advances the clock to the next plan event's instant (via a marker
    /// timer, draining whatever fires on the way) and dispatches it.
    fn apply_next_plan_event(&mut self) {
        let Some(ev) = self
            .churn
            .as_ref()
            .and_then(|c| c.plan.get(c.next_event).copied())
        else {
            return;
        };
        let delay = ev.at.saturating_since(self.net.now());
        let marker = self
            .net
            .set_timer(self.requester, delay, CHURN_TOKEN_NS | KIND_MARKER);
        while let Some(nev) = self.net.step_event() {
            if matches!(&nev, NetEvent::Timer(t) if t.id == marker) {
                break;
            }
            let _ = self.churn_intercept(nev);
        }
        let Some(mut st) = self.churn.take() else {
            return;
        };
        st.next_event += 1;
        dispatch_membership(self, &mut st, ev);
        self.churn = Some(st);
    }

    /// Consumes churn-owned events (handoff / repair deliveries, churn
    /// timers); returns search-layer events untouched. With churn
    /// disabled everything passes through.
    pub(crate) fn churn_intercept(&mut self, ev: NetEvent<KwMsg>) -> Option<NetEvent<KwMsg>> {
        if self.churn.is_none() {
            return Some(ev);
        }
        match ev {
            NetEvent::Delivery(d) => match d.payload {
                KwMsg::HandoffBatch {
                    bits,
                    seq,
                    entries,
                    last,
                } => {
                    let mut st = self.churn.take().expect("checked above");
                    on_handoff_batch(self, &mut st, d.to, d.from, bits, seq, entries, last);
                    self.churn = Some(st);
                    None
                }
                KwMsg::HandoffAck { bits, seq } => {
                    let mut st = self.churn.take().expect("checked above");
                    on_handoff_ack(self, &mut st, bits, seq);
                    self.churn = Some(st);
                    None
                }
                KwMsg::RepairPush { bits, entries } => {
                    let mut st = self.churn.take().expect("checked above");
                    on_repair_push(self, &mut st, bits, entries);
                    self.churn = Some(st);
                    None
                }
                KwMsg::TSummary { bits, count } => {
                    // Full-state refresh: idempotent, so duplicates and
                    // reordering are harmless. Ignored while a repair is
                    // pending for the vertex — the count is about to
                    // rise again, and an interim refresh could unsafely
                    // shrink the digest below truth.
                    let pending = self
                        .churn
                        .as_deref()
                        .is_some_and(|c| c.repair_pending.contains_key(&bits));
                    if !pending {
                        self.summary.refresh_leaf(bits, count);
                    }
                    None
                }
                payload => Some(NetEvent::Delivery(hyperdex_simnet::net::Delivery {
                    at: d.at,
                    from: d.from,
                    to: d.to,
                    payload,
                })),
            },
            NetEvent::Timer(t) if t.token & CHURN_TOKEN_NS != 0 => {
                let mut st = self.churn.take().expect("checked above");
                match t.token & KIND_MASK {
                    KIND_STABILIZE => on_stabilize(self, &mut st),
                    KIND_REPAIR => on_repair(self, &mut st),
                    KIND_HANDOFF => on_handoff_timer(self, &mut st, t.token & BITS_MASK),
                    // Stray marker (its drain loop already exited).
                    _ => {}
                }
                self.churn = Some(st);
                None
            }
            other => Some(other),
        }
    }

    /// Whether vertex `bits` must stay silent: mid-handoff, crashed and
    /// not yet reassigned, or reassigned but still awaiting anti-entropy
    /// repair. A mid-repair vertex answering with its partial table
    /// would silently truncate recall — staying silent instead makes it
    /// a retriable target, so a search either retries into the repaired
    /// table or times out and fails over to the replica cube.
    pub(crate) fn churn_vertex_silent(&self, bits: u64) -> bool {
        self.churn
            .as_deref()
            .is_some_and(|c| c.unavailable.contains(&bits) || c.repair_pending.contains_key(&bits))
    }
}

/// Registers a host: endpoint, ring membership, reverse map. A host id
/// rejoining after a death gets a fresh endpoint (the old one stays
/// dead under the fault plan).
fn add_host(sim: &mut ProtocolSim, st: &mut ChurnState, node: u64) {
    match st.hosts.get(&node) {
        Some(&ep) if sim.net.is_up(ep) => {}
        _ => {
            let ep = sim.net.add_endpoint();
            st.hosts.insert(node, ep);
        }
    }
    let key = st.node_key(node);
    st.ring.join(key);
    st.node_of.insert(key, node);
    st.live.insert(node);
}

/// Applies one membership event from the plan.
fn dispatch_membership(sim: &mut ProtocolSim, st: &mut ChurnState, ev: ChurnEvent) {
    match ev.kind {
        ChurnKind::Join => {
            if st.live.contains(&ev.node) {
                return;
            }
            add_host(sim, st, ev.node);
            st.stats.joins += 1;
            arm_stabilize(sim, st);
        }
        ChurnKind::GracefulLeave => {
            if !st.live.contains(&ev.node) || st.live.len() <= 1 {
                return; // unknown node, or would empty the network
            }
            st.live.remove(&ev.node);
            let key = st.node_key(ev.node);
            st.ring.leave(key);
            st.node_of.remove(&key);
            st.stats.leaves += 1;
            let owned: Vec<u64> = st
                .view
                .iter()
                .filter(|&(_, &owner)| owner == ev.node)
                .map(|(&bits, _)| bits)
                .collect();
            if owned.is_empty() {
                let ep = st.hosts[&ev.node];
                sim.net.faults_mut().kill(ep);
            } else {
                st.departing.insert(ev.node, owned.len());
                for bits in owned {
                    let dst = st
                        .ideal_owner(bits)
                        .expect("a non-empty ring has surrogates");
                    start_handoff(sim, st, bits, ev.node, dst);
                }
            }
            arm_stabilize(sim, st);
        }
        ChurnKind::Crash => {
            if !st.live.contains(&ev.node) || st.live.len() <= 1 {
                return;
            }
            st.live.remove(&ev.node);
            let key = st.node_key(ev.node);
            st.ring.leave(key);
            st.node_of.remove(&key);
            st.stats.crashes += 1;
            sim.net.faults_mut().kill(st.hosts[&ev.node]);
            let now = sim.net.now();
            // Transfers through the dead host are lost mid-stream.
            let involved: Vec<u64> = st
                .handoffs
                .iter()
                .filter(|(_, h)| h.src == ev.node || h.dst == ev.node)
                .map(|(&bits, _)| bits)
                .collect();
            for bits in involved {
                abort_handoff(sim, st, bits, now);
            }
            // Its primary tables vanish with it.
            let orphaned: Vec<u64> = st
                .view
                .iter()
                .filter(|&(_, &owner)| owner == ev.node)
                .map(|(&bits, _)| bits)
                .collect();
            for bits in orphaned {
                sim.tables.remove(&bits);
                st.view.remove(&bits);
                st.unavailable.insert(bits);
                st.repair_pending.insert(bits, now);
            }
            arm_stabilize(sim, st);
            arm_repair(sim, st);
        }
    }
}

/// Begins moving vertex `bits` from host `src` to host `dst`. An empty
/// table flips ownership instantly; otherwise the table is taken
/// offline and streamed batch by batch.
fn start_handoff(sim: &mut ProtocolSim, st: &mut ChurnState, bits: u64, src: u64, dst: u64) {
    if st.handoffs.contains_key(&bits) {
        return;
    }
    st.stats.handoffs_started += 1;
    let table = sim
        .tables
        .remove(&bits)
        .unwrap_or_else(|| PostingStore::new(sim.store));
    let entries: Vec<(Arc<KeywordSet>, Vec<ObjectId>)> = table
        .iter()
        .map(|(k, objs)| (Arc::clone(k), objs.collect()))
        .collect();
    if entries.is_empty() {
        install_ownership(st, bits, dst);
        st.stats.handoffs_completed += 1;
        handoff_done_for_src(sim, st, src);
        return;
    }
    st.unavailable.insert(bits);
    let batch_entries = st.cfg.batch_entries;
    let batches: Vec<Vec<(Arc<KeywordSet>, Vec<ObjectId>)>> = entries
        .chunks(batch_entries)
        .map(<[(Arc<KeywordSet>, Vec<ObjectId>)]>::to_vec)
        .collect();
    st.handoffs.insert(
        bits,
        Handoff {
            src,
            dst,
            batches,
            acked: 0,
            received: 0,
            staged: PostingStore::new(sim.store),
            complete: false,
            attempts: 0,
            timer: None,
        },
    );
    send_current_batch(sim, st, bits);
}

/// Flips vertex `bits` to owner `dst`: available again, generation
/// bumped so stale cache entries die.
fn install_ownership(st: &mut ChurnState, bits: u64, dst: u64) {
    st.view.insert(bits, dst);
    st.unavailable.remove(&bits);
    *st.generations.entry(bits).or_insert(0) += 1;
}

/// (Re)transmits the current unacknowledged batch and arms its timer.
fn send_current_batch(sim: &mut ProtocolSim, st: &mut ChurnState, bits: u64) {
    let timeout = st.cfg.handoff_timeout;
    let (entries, seq, last, src, dst, stale_timer) = {
        let Some(h) = st.handoffs.get_mut(&bits) else {
            return;
        };
        let idx = h.acked.min(h.batches.len() - 1);
        (
            h.batches[idx].clone(),
            idx as u32,
            idx + 1 == h.batches.len(),
            h.src,
            h.dst,
            h.timer.take(),
        )
    };
    if let Some(t) = stale_timer {
        sim.net.cancel_timer(t);
    }
    let bytes = entries_bytes(&entries);
    let (src_ep, dst_ep) = (st.hosts[&src], st.hosts[&dst]);
    sim.net.send_sized(
        src_ep,
        dst_ep,
        KwMsg::HandoffBatch {
            bits,
            seq,
            entries,
            last,
        },
        bytes,
    );
    let timer = sim.net.set_timer(
        sim.requester,
        hyperdex_simnet::time::SimDuration::from_ticks(timeout),
        CHURN_TOKEN_NS | KIND_HANDOFF | bits,
    );
    st.stats.handoff_bytes += bytes;
    if let Some(h) = st.handoffs.get_mut(&bits) {
        h.timer = Some(timer);
    }
}

/// Destination side of the stop-and-wait stream: stage in-order batches,
/// install on the last one, always (re-)acknowledge.
#[allow(clippy::too_many_arguments)]
fn on_handoff_batch(
    sim: &mut ProtocolSim,
    st: &mut ChurnState,
    to: EndpointId,
    from: EndpointId,
    bits: u64,
    seq: u32,
    entries: Vec<(Arc<KeywordSet>, Vec<ObjectId>)>,
    last: bool,
) {
    // Out-of-order batches cannot occur under stop-and-wait; anything
    // but the expected in-order batch is a duplicate worth
    // re-acknowledging (including batches after the record is gone —
    // only the final ack was lost).
    let fresh = {
        let Some(h) = st.handoffs.get_mut(&bits) else {
            sim.net.send(to, from, KwMsg::HandoffAck { bits, seq });
            return;
        };
        if h.complete || (seq as usize) != h.received {
            None
        } else {
            let count = entries.len() as u64;
            for (k, objs) in entries {
                for o in objs {
                    h.staged.insert_arc(Arc::clone(&k), o);
                }
            }
            h.received += 1;
            let installed = last.then(|| {
                h.complete = true;
                let backend = h.staged.backend();
                let staged = std::mem::replace(&mut h.staged, PostingStore::new(backend));
                (staged, h.dst)
            });
            Some((count, installed))
        }
    };
    if let Some((count, installed)) = fresh {
        st.stats.handoff_batches += 1;
        st.stats.handoff_entries += count;
        sim.net.metrics_mut().handoff_batches.incr();
        sim.net.metrics_mut().handoff_entries.add(count);
        if let Some((table, dst)) = installed {
            sim.tables.insert(bits, table);
            install_ownership(st, bits, dst);
            st.stats.handoffs_completed += 1;
            push_summary_refresh(sim, st, bits);
        }
    }
    sim.net.send(to, from, KwMsg::HandoffAck { bits, seq });
}

/// Source side: an in-order ack advances the window; the final ack
/// closes the transfer (and lets a departing source go dark).
fn on_handoff_ack(sim: &mut ProtocolSim, st: &mut ChurnState, bits: u64, seq: u32) {
    let Some(h) = st.handoffs.get_mut(&bits) else {
        return;
    };
    if (seq as usize) != h.acked {
        return; // stale duplicate
    }
    h.acked += 1;
    h.attempts = 0;
    if let Some(t) = h.timer.take() {
        sim.net.cancel_timer(t);
    }
    if h.acked == h.batches.len() {
        let src = h.src;
        st.handoffs.remove(&bits);
        handoff_done_for_src(sim, st, src);
    } else {
        send_current_batch(sim, st, bits);
    }
}

/// Retransmit timer: resend the current batch, or give up past the
/// budget.
fn on_handoff_timer(sim: &mut ProtocolSim, st: &mut ChurnState, bits: u64) {
    let max = st.cfg.max_handoff_retransmits;
    let now = sim.net.now();
    let over_budget = {
        let Some(h) = st.handoffs.get_mut(&bits) else {
            return;
        };
        h.timer = None;
        h.attempts += 1;
        h.attempts > max
    };
    if over_budget {
        abort_handoff(sim, st, bits, now);
        arm_stabilize(sim, st);
        return;
    }
    st.stats.handoff_retransmits += 1;
    send_current_batch(sim, st, bits);
}

/// Abandons a transfer. If the table already installed, this is just
/// cleanup of a lost final ack; otherwise the in-flight postings are
/// declared lost and queued for repair.
fn abort_handoff(sim: &mut ProtocolSim, st: &mut ChurnState, bits: u64, now: SimTime) {
    let Some(h) = st.handoffs.remove(&bits) else {
        return;
    };
    if let Some(t) = h.timer {
        sim.net.cancel_timer(t);
    }
    if h.complete {
        handoff_done_for_src(sim, st, h.src);
        return;
    }
    st.stats.handoffs_aborted += 1;
    st.view.remove(&bits);
    st.unavailable.insert(bits);
    st.repair_pending.insert(bits, now);
    handoff_done_for_src(sim, st, h.src);
    arm_repair(sim, st);
}

/// One of a departing host's transfers finished; the host goes dark
/// when its last one does.
fn handoff_done_for_src(sim: &mut ProtocolSim, st: &mut ChurnState, src: u64) {
    if let Some(left) = st.departing.get_mut(&src) {
        *left = left.saturating_sub(1);
        if *left == 0 {
            st.departing.remove(&src);
            let ep = st.hosts[&src];
            sim.net.faults_mut().kill(ep);
        }
    }
}

/// Arms the next stabilization round unless one is already pending.
fn arm_stabilize(sim: &mut ProtocolSim, st: &mut ChurnState) {
    if !st.stab_armed {
        st.stab_armed = true;
        sim.net.set_timer(
            sim.requester,
            hyperdex_simnet::time::SimDuration::from_ticks(st.cfg.stabilization_interval),
            CHURN_TOKEN_NS | KIND_STABILIZE,
        );
    }
}

/// Arms the next repair round unless one is already pending.
fn arm_repair(sim: &mut ProtocolSim, st: &mut ChurnState) {
    if !st.repair_armed {
        st.repair_armed = true;
        sim.net.set_timer(
            sim.requester,
            hyperdex_simnet::time::SimDuration::from_ticks(st.cfg.repair_interval),
            CHURN_TOKEN_NS | KIND_REPAIR,
        );
    }
}

/// One stabilization round: reconcile every *tracked* vertex's
/// believed owner with its ideal surrogate — orphans are taken over
/// directly, stale owners start handoffs. Untracked vertices are empty
/// and implicitly ideal, so the sweep costs the corpus footprint, not
/// `2^r`. Re-arms itself only while work remains, so a settled network
/// goes quiescent.
fn on_stabilize(sim: &mut ProtocolSim, st: &mut ChurnState) {
    st.stab_armed = false;
    st.stats.stabilization_rounds += 1;
    let mut tracked = st.tracked_vertices();
    tracked.extend(sim.tables.keys().copied());
    for bits in tracked {
        if st.handoffs.contains_key(&bits) {
            continue; // transfer already in flight
        }
        let Some(ideal) = st.ideal_owner(bits) else {
            continue;
        };
        match st.view.get(&bits).copied() {
            Some(v) if v == ideal => {}
            Some(v) => start_handoff(sim, st, bits, v, ideal),
            None => {
                // Crashed owner: the surrogate takes over with an empty
                // table; repair refills it from the secondary cube.
                install_ownership(st, bits, ideal);
            }
        }
    }
    if !st.handoffs.is_empty() || st.divergence() > 0 {
        arm_stabilize(sim, st);
    }
    if !st.repair_pending.is_empty() {
        arm_repair(sim, st);
    }
}

/// One anti-entropy repair round: for every vertex that lost postings,
/// diff its primary table against the secondary cube and re-push
/// whatever is missing. Idempotent pushes absorb message loss; the
/// round re-arms until every diff is empty.
fn on_repair(sim: &mut ProtocolSim, st: &mut ChurnState) {
    st.repair_armed = false;
    let pending: Vec<(u64, SimTime)> = st.repair_pending.iter().map(|(&b, &t)| (b, t)).collect();
    for (bits, lost_at) in pending {
        let Some(owner) = st.view.get(&bits).copied() else {
            continue; // awaiting takeover by a stabilization round
        };
        if !st.live.contains(&owner) {
            continue;
        }
        // Missing entries, grouped by the secondary vertex that holds
        // the replica. Only *occupied* secondary vertices are visited —
        // the sweep is proportional to the corpus footprint, not 2^r —
        // and BTreeMap order keeps it deterministic.
        let mut missing: BTreeMap<u64, EntryBatch> = BTreeMap::new();
        for (&bits2, table2) in sim.tables2.iter() {
            for (k, objs) in table2.iter() {
                if sim.hasher.vertex_for(k).bits() != bits {
                    continue;
                }
                let have: Vec<ObjectId> = sim
                    .tables
                    .get(&bits)
                    .map(|t| t.objects_with(k).collect())
                    .unwrap_or_default();
                let lost: Vec<ObjectId> = objs.filter(|o| !have.contains(o)).collect();
                if !lost.is_empty() {
                    missing
                        .entry(bits2)
                        .or_default()
                        .push((Arc::clone(k), lost));
                }
            }
        }
        if missing.is_empty() {
            let lag = sim.net.now().saturating_since(lost_at).ticks();
            st.stats.repairs_completed += 1;
            st.stats.repair_lag_total += lag;
            st.stats.repair_lag_max = st.stats.repair_lag_max.max(lag);
            st.repair_pending.remove(&bits);
            *st.generations.entry(bits).or_insert(0) += 1;
            // The table is authoritative again: refresh the occupancy
            // summary and announce the exact count up the anchor chain.
            push_summary_refresh(sim, st, bits);
            continue;
        }
        let owner_ep = st.hosts[&owner];
        for (bits2, entries) in missing {
            let from = sim.endpoint_of(bits2);
            for chunk in entries.chunks(st.cfg.batch_entries) {
                let bytes = entries_bytes(chunk);
                sim.net.send_sized(
                    from,
                    owner_ep,
                    KwMsg::RepairPush {
                        bits,
                        entries: chunk.to_vec(),
                    },
                    bytes,
                );
                st.stats.repair_pushes += 1;
            }
        }
    }
    if !st.repair_pending.is_empty() {
        arm_repair(sim, st);
    }
}

/// Installs re-pushed replica entries into the primary table.
fn on_repair_push(
    sim: &mut ProtocolSim,
    st: &mut ChurnState,
    bits: u64,
    entries: Vec<(Arc<KeywordSet>, Vec<ObjectId>)>,
) {
    let mut added = 0u64;
    let table = sim
        .tables
        .entry(bits)
        .or_insert_with(|| PostingStore::new(sim.store));
    for (k, objs) in entries {
        for o in objs {
            if table.insert_arc(Arc::clone(&k), o) {
                added += 1;
            }
        }
    }
    st.stats.repair_entries += added;
    sim.net.metrics_mut().repair_batches.incr();
    sim.net.metrics_mut().repair_entries.add(added);
}

/// Refreshes the primary occupancy summary for vertex `bits` from its
/// now-authoritative table and streams the exact count up the vertex's
/// prefix anchor chain as [`KwMsg::TSummary`] messages (one per summary
/// level, to the vertex anchoring each enclosing region).
///
/// Skipped while a repair is still pending for the vertex: the table
/// may yet grow, and publishing an interim (lower) count could let a
/// search prune a subtree that is about to be repopulated. Deferring
/// keeps the summary *over*-counting — a stale digest costs an extra
/// visit, never a missed result. Truth only decreases under churn (no
/// inserts mid-plan), so last-writer-wins refreshes stay safe.
fn push_summary_refresh(sim: &mut ProtocolSim, st: &ChurnState, bits: u64) {
    if st.repair_pending.contains_key(&bits) {
        return;
    }
    let count = sim.tables.get(&bits).map_or(0, PostingStore::object_count) as u64;
    sim.summary.refresh_leaf(bits, count);
    let r = sim.shape.r();
    let from = sim.endpoint_of(bits);
    for (j, prefix) in hyperdex_hypercube::sbt::summary_path(bits, r).skip(1) {
        let anchor = sim.endpoint_of(prefix << j);
        sim.net.send(from, anchor, KwMsg::TSummary { bits, count });
        sim.net.metrics_mut().summary_deltas.incr();
    }
}

#[cfg(test)]
mod tests {
    use hyperdex_simnet::churn::ChurnConfig;
    use hyperdex_simnet::latency::LatencyModel;
    use hyperdex_simnet::time::SimTime;

    use super::*;
    use crate::sim_protocol::{FtConfig, RecoveryStrategy};

    const CORPUS: &[(u64, &str)] = &[
        (1, "a"),
        (2, "a b"),
        (3, "a b c"),
        (4, "a c"),
        (5, "b c"),
        (6, "a d e"),
        (7, "x y"),
        (8, "a b d"),
    ];

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn sim_with_corpus(r: u8, seed: u64) -> ProtocolSim {
        let mut sim = ProtocolSim::new(r, seed, LatencyModel::constant(1)).unwrap();
        for &(id, kws) in CORPUS {
            sim.insert(ObjectId::from_raw(id), set(kws)).unwrap();
        }
        sim
    }

    fn recall_ids(sim: &mut ProtocolSim, query: &str) -> Vec<u64> {
        let out = sim
            .search_fault_tolerant(
                &set(query),
                usize::MAX - 1,
                FtConfig::new(RecoveryStrategy::ReplicatedFailover),
            )
            .unwrap();
        let mut ids: Vec<u64> = out.results.iter().map(|r| r.object.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    #[test]
    fn enable_validates_and_rejects_double_enable() {
        let mut sim = sim_with_corpus(4, 0);
        let plan = ChurnPlan::default();
        assert!(matches!(
            sim.enable_churn(&plan, StabilizationConfig::default(), &[]),
            Err(Error::InvalidChurnConfig { .. })
        ));
        let bad = StabilizationConfig {
            stabilization_interval: 0,
            ..StabilizationConfig::default()
        };
        assert!(matches!(
            sim.enable_churn(&plan, bad, &[1, 2]),
            Err(Error::InvalidChurnConfig { .. })
        ));
        sim.enable_churn(&plan, StabilizationConfig::default(), &[1, 2])
            .unwrap();
        assert!(matches!(
            sim.enable_churn(&plan, StabilizationConfig::default(), &[1, 2]),
            Err(Error::InvalidChurnConfig { .. })
        ));
    }

    #[test]
    fn dimensions_past_the_old_dense_cap_churn_cleanly() {
        // Churn used to reject r > 16 (`DENSE_R_CAP`) because every
        // stabilization round swept all 2^r vertices. The sparse
        // tracked-set port lifts that: a 2^32-vertex cube enables
        // churn, survives a crash, repairs from the secondary cube,
        // and converges — sweeping only the handful of occupied
        // vertices.
        let mut sim = ProtocolSim::new(32, 7, LatencyModel::constant(1)).unwrap();
        for &(id, kws) in CORPUS {
            sim.insert(ObjectId::from_raw(id), set(kws)).unwrap();
        }
        let mut plan = ChurnPlan::default();
        plan.crash_at(SimTime::from_ticks(10), 20);
        sim.enable_churn(&plan, StabilizationConfig::default(), &[10, 20, 30, 40])
            .unwrap();
        sim.run_churn_to_quiescence();
        let st = sim.churn().unwrap();
        assert!(st.converged());
        assert!((st.consistency() - 1.0).abs() < f64::EPSILON);
        // Inserts made after churn was enabled join the tracked view
        // too (the invariant the sparse sweep depends on).
        sim.insert(ObjectId::from_raw(99), set("z z2 z3")).unwrap();
        let bits = sim.hasher.vertex_for(&set("z z2 z3")).bits();
        assert!(sim.churn().unwrap().view.contains_key(&bits));
        // Nothing was lost to the crash. The sweep must prune by
        // occupancy: unpruned superset search would walk the query's
        // 2^31-vertex induced subcube.
        let out = sim
            .search_fault_tolerant(
                &set("a"),
                usize::MAX - 1,
                FtConfig::new(RecoveryStrategy::ReplicatedFailover).prune(true),
            )
            .unwrap();
        let mut ids: Vec<u64> = out.results.iter().map(|r| r.object.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);
    }

    #[test]
    fn static_membership_is_fully_consistent_and_free() {
        let mut sim = sim_with_corpus(5, 3);
        sim.enable_churn(
            &ChurnPlan::default(),
            StabilizationConfig::default(),
            &[10, 20, 30, 40],
        )
        .unwrap();
        sim.run_churn_to_quiescence();
        let st = sim.churn().unwrap();
        assert!(st.converged());
        assert_eq!(st.consistency(), 1.0);
        assert_eq!(st.stats().handoffs_started, 0);
        assert_eq!(st.stats().stabilization_rounds, 0);
        assert_eq!(recall_ids(&mut sim, "a"), vec![1, 2, 3, 4, 6, 8]);
    }

    #[test]
    fn graceful_leave_streams_every_owned_table() {
        let mut sim = sim_with_corpus(5, 7);
        let members = [1u64, 2, 3, 4];
        let mut plan = ChurnPlan::default();
        for (i, &m) in members.iter().enumerate().take(3) {
            plan.leave_at(SimTime::from_ticks(40 + 40 * i as u64), m);
        }
        let cfg = StabilizationConfig {
            batch_entries: 1, // force multi-batch streams
            ..StabilizationConfig::default()
        };
        sim.enable_churn(&plan, cfg, &members).unwrap();
        sim.run_churn_to_quiescence();
        let st = sim.churn().unwrap();
        assert!(st.converged(), "not converged: {:?}", st.stats());
        assert_eq!(st.consistency(), 1.0);
        assert_eq!(st.stats().leaves, 3);
        assert!(st.stats().handoffs_completed >= st.stats().leaves);
        assert!(st.stats().handoff_bytes > 0);
        assert_eq!(st.stats().handoffs_aborted, 0);
        // Everything survives three sequential departures.
        assert_eq!(recall_ids(&mut sim, "a"), vec![1, 2, 3, 4, 6, 8]);
        assert_eq!(recall_ids(&mut sim, "x"), vec![7]);
        // The sole survivor owns every vertex.
        let st = sim.churn().unwrap();
        assert_eq!(st.live_nodes(), 1);
        assert!((0..32).all(|b| st.view_owner(b) == Some(4)));
    }

    #[test]
    fn crash_recovers_via_takeover_and_repair() {
        let mut sim = sim_with_corpus(5, 11);
        let members = [1u64, 2, 3, 4, 5, 6];
        // Crash half the network at once.
        let mut plan = ChurnPlan::default();
        plan.crash_at(SimTime::from_ticks(30), 2);
        plan.crash_at(SimTime::from_ticks(30), 4);
        plan.crash_at(SimTime::from_ticks(30), 6);
        sim.enable_churn(&plan, StabilizationConfig::default(), &members)
            .unwrap();
        sim.run_churn_to_quiescence();
        let st = sim.churn().unwrap();
        assert!(st.converged(), "not converged: {:?}", st.stats());
        assert_eq!(st.stats().crashes, 3);
        // Some vertex the crashed hosts owned held postings, so repair
        // had work to do and measured a positive lag.
        assert!(st.stats().repairs_completed > 0);
        assert!(st.stats().repair_entries > 0);
        assert!(st.stats().repair_lag_max > 0);
        assert!(st.stats().repair_lag_mean() > 0.0);
        // Anti-entropy restored every lost posting.
        assert_eq!(recall_ids(&mut sim, "a"), vec![1, 2, 3, 4, 6, 8]);
        assert_eq!(recall_ids(&mut sim, "b"), vec![2, 3, 5, 8]);
    }

    #[test]
    fn handoff_generation_bumps_on_ownership_change() {
        let mut sim = sim_with_corpus(4, 5);
        let mut plan = ChurnPlan::default();
        plan.leave_at(SimTime::from_ticks(20), 1);
        sim.enable_churn(&plan, StabilizationConfig::default(), &[1, 2, 3])
            .unwrap();
        let before: Vec<u64> = (0..16)
            .map(|b| sim.churn().unwrap().generation(b))
            .collect();
        // Only *occupied* vertices stream handoffs (an empty vertex
        // flips to its new surrogate implicitly, serving the same
        // nothing — no cached result to invalidate, no gen bump).
        let owned: Vec<u64> = (0..16)
            .filter(|&b| {
                sim.churn().unwrap().view_owner(b) == Some(1) && sim.tables.contains_key(&b)
            })
            .collect();
        assert!(!owned.is_empty(), "host 1 owns nothing; adjust seed");
        sim.run_churn_to_quiescence();
        let st = sim.churn().unwrap();
        for b in 0..16 {
            if owned.contains(&b) {
                assert!(st.generation(b) > before[b as usize], "vertex {b} kept gen");
            } else {
                assert_eq!(st.generation(b), before[b as usize], "vertex {b} bumped");
            }
        }
    }

    #[test]
    fn lossy_links_retransmit_until_the_handoff_lands() {
        let mut sim = sim_with_corpus(5, 13);
        let mut plan = ChurnPlan::default();
        plan.leave_at(SimTime::from_ticks(25), 1);
        plan.leave_at(SimTime::from_ticks(60), 2);
        let cfg = StabilizationConfig {
            batch_entries: 1,
            ..StabilizationConfig::default()
        };
        sim.enable_churn(&plan, cfg, &[1, 2, 3, 4]).unwrap();
        sim.network_mut().faults_mut().set_drop_probability(0.3);
        sim.run_churn_to_quiescence();
        sim.network_mut().faults_mut().set_drop_probability(0.0);
        let st = sim.churn().unwrap();
        assert!(st.converged(), "not converged: {:?}", st.stats());
        assert!(
            st.stats().handoff_retransmits > 0,
            "30% loss must cost retransmits: {:?}",
            st.stats()
        );
        assert_eq!(recall_ids(&mut sim, "a"), vec![1, 2, 3, 4, 6, 8]);
    }

    #[test]
    fn generated_plans_converge_deterministically() {
        let members: Vec<u64> = (1..=8).collect();
        let cfg = ChurnConfig {
            horizon: SimTime::from_ticks(600),
            events_per_kilotick: 20.0,
            join_fraction: 0.4,
            graceful_fraction: 0.5,
        };
        for seed in [0u64, 1, 42, 0xDEAD] {
            let plan = ChurnPlan::generate(&cfg, &members, seed);
            let run = |()| {
                let mut sim = sim_with_corpus(5, seed);
                sim.enable_churn(&plan, StabilizationConfig::default(), &members)
                    .unwrap();
                sim.run_churn_to_quiescence();
                let st = sim.churn().unwrap();
                assert!(st.converged(), "seed {seed}: {:?}", st.stats());
                assert_eq!(st.consistency(), 1.0, "seed {seed}");
                // Quiescent convergence takes boundedly many rounds:
                // each round makes progress on every divergent vertex.
                assert!(
                    st.stats().stabilization_rounds <= 4 * (plan.len() as u64 + 2),
                    "seed {seed}: {} rounds for {} events",
                    st.stats().stabilization_rounds,
                    plan.len()
                );
                *st.stats()
            };
            assert_eq!(run(()), run(()), "seed {seed} not deterministic");
        }
    }

    proptest::proptest! {
        /// Occupancy-guided pruning stays recall-safe across arbitrary
        /// generated churn plans: at every probe instant — mid-plan and
        /// at quiescence — a pruned fault-tolerant search returns the
        /// full static result set. Crashes leave summaries stale
        /// (over-counting), which may cost extra visits but must never
        /// hide a result.
        #[test]
        fn pruned_search_keeps_full_recall_across_churn_plans(seed in 0u64..24) {
            let members: Vec<u64> = (1..=6).collect();
            let cfg = ChurnConfig {
                horizon: SimTime::from_ticks(400),
                events_per_kilotick: 15.0,
                join_fraction: 0.3,
                graceful_fraction: 0.4,
            };
            let plan = ChurnPlan::generate(&cfg, &members, seed);
            let mut sim = sim_with_corpus(5, seed);
            sim.enable_churn(&plan, StabilizationConfig::default(), &members)
                .unwrap();
            for probe in [150u64, 400] {
                sim.run_churn_to(SimTime::from_ticks(probe));
                for (query, want) in [
                    ("a", vec![1u64, 2, 3, 4, 6, 8]),
                    ("b", vec![2, 3, 5, 8]),
                    ("x", vec![7]),
                ] {
                    let out = sim
                        .search_fault_tolerant(
                            &set(query),
                            usize::MAX - 1,
                            FtConfig::new(RecoveryStrategy::ReplicatedFailover).prune(true),
                        )
                        .unwrap();
                    let mut ids: Vec<u64> =
                        out.results.iter().map(|r| r.object.raw()).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    proptest::prop_assert_eq!(
                        ids, want,
                        "seed {} probe {} query {}: pruning lost recall",
                        seed, probe, query
                    );
                }
            }
            sim.run_churn_to_quiescence();
            proptest::prop_assert!(sim.churn().unwrap().converged());
        }
    }

    #[test]
    fn search_concurrent_with_handoff_retries_and_keeps_recall() {
        // Start a handoff, then search *before* draining the network:
        // the mid-handoff vertex is silent, the coordinator retries, and
        // the retry lands after the batches install.
        let mut sim = sim_with_corpus(5, 7);
        let mut plan = ChurnPlan::default();
        plan.leave_at(SimTime::from_ticks(5), 1);
        let cfg = StabilizationConfig {
            batch_entries: 1,
            ..StabilizationConfig::default()
        };
        sim.enable_churn(&plan, cfg, &[1, 2, 3, 4]).unwrap();
        // Apply the leave (starts the streams) but drain nothing else.
        sim.run_churn_to(SimTime::from_ticks(5));
        assert!(
            !sim.churn().unwrap().converged(),
            "handoff should still be in flight"
        );
        let out = sim
            .search_fault_tolerant(
                &set("a"),
                usize::MAX - 1,
                FtConfig::new(RecoveryStrategy::ReplicatedFailover),
            )
            .unwrap();
        let mut ids: Vec<u64> = out.results.iter().map(|r| r.object.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![1, 2, 3, 4, 6, 8], "recall lost mid-handoff");
        // Draining the search also drained the handoff.
        assert!(sim.churn().unwrap().converged());
    }

    #[test]
    fn duplicate_tsummary_delivery_is_idempotent() {
        // A lossy or duplicating network may deliver the same summary
        // refresh any number of times; the digest and every subsequent
        // search must be unaffected. (The runtime's fault injector
        // makes duplicate delivery an everyday event, so this is the
        // message-level half of its idempotence contract.)
        let mut sim = sim_with_corpus(5, 3);
        sim.enable_churn(
            &ChurnPlan::default(),
            StabilizationConfig::default(),
            &[1, 2, 3],
        )
        .unwrap();
        sim.run_churn_to_quiescence();

        let bits = sim.query_root(&set("a b")).bits();
        let count = sim.tables.get(&bits).map_or(0, PostingStore::object_count) as u64;
        assert!(count > 0, "object 2 should occupy this vertex");
        let before = sim.summary.clone();

        // Re-deliver the refresh three times, including to the vertex's
        // own anchor — the exact frames push_summary_refresh emits.
        let from = sim.endpoint_of(bits);
        let anchor = sim.endpoint_of(0);
        for _ in 0..3 {
            sim.net.send(from, anchor, KwMsg::TSummary { bits, count });
        }
        sim.run_churn_to_quiescence();

        assert_eq!(sim.summary, before, "replayed T_SUMMARY changed the digest");
        assert_eq!(recall_ids(&mut sim, "a"), vec![1, 2, 3, 4, 6, 8]);
    }
}
