//! Search operations: pin search and the superset-search protocol.
//!
//! §2.2 defines the two services the index must provide:
//!
//! * **Pin search** — objects whose keyword set is *exactly* `K`: one
//!   lookup to the node `F_h(K)`.
//! * **Superset search** — up to `t` objects whose keyword sets
//!   *contain* `K`: a traversal of the subhypercube induced by `F_h(K)`
//!   along its spanning binomial tree, with early exit.
//!
//! [`SupersetQuery`] configures the traversal (threshold, top-down vs.
//! bottom-up preference, sequential vs. level-parallel execution, cache
//! usage); [`SearchStats`] carries the cost accounting the paper's
//! figures report.

pub mod cumulative;
pub mod superset;

use hyperdex_dht::ObjectId;

use crate::error::Error;
use crate::keyword::KeywordSet;

/// The order in which the spanning binomial tree is explored (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalOrder {
    /// Breadth-first from the root: prefers *general* objects (fewest
    /// extra keywords first). The paper's presented variant.
    #[default]
    TopDown,
    /// Deepest levels first: prefers *specific* objects (most extra
    /// keywords first). The paper's "slight modification".
    BottomUp,
}

/// How query messages propagate through the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One `T_QUERY` outstanding at a time, coordinated by the root
    /// (§3.3's protocol). Time ∝ nodes contacted.
    #[default]
    Sequential,
    /// All nodes of a tree level queried simultaneously (§3.5). Time ∝
    /// tree depth; may overshoot the threshold within the final level.
    LevelParallel,
}

/// A superset-search request.
///
/// # Example
///
/// ```
/// use hyperdex_core::{KeywordSet, SupersetQuery, TraversalOrder};
///
/// let query = SupersetQuery::new(KeywordSet::parse("jazz piano")?)
///     .threshold(20)
///     .order(TraversalOrder::BottomUp);
/// assert_eq!(query.threshold, 20);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupersetQuery {
    /// The keyword set `K` that results must contain.
    pub keywords: KeywordSet,
    /// Maximum number of objects to return (`t` in the paper).
    pub threshold: usize,
    /// Result-ordering preference.
    pub order: TraversalOrder,
    /// Sequential protocol or level-parallel broadcast.
    pub mode: ExecutionMode,
    /// Whether per-node result caches may serve or store this query.
    pub use_cache: bool,
    /// Whether occupancy summaries may prune provably-empty SBT
    /// subtrees (recall-safe; see [`crate::summary`]).
    pub prune: bool,
    /// Whether per-node scans use the 64-bit keyword-signature
    /// prefilter (on by default; results are identical either way —
    /// the off switch exists so benchmarks can measure the
    /// pre-optimization string-compare scan).
    pub mask: bool,
}

impl SupersetQuery {
    /// Creates a query returning *all* matches (threshold `usize::MAX`),
    /// top-down, sequential, cache enabled, pruning disabled, signature
    /// prefilter enabled.
    pub fn new(keywords: KeywordSet) -> Self {
        SupersetQuery {
            keywords,
            threshold: usize::MAX,
            order: TraversalOrder::TopDown,
            mode: ExecutionMode::Sequential,
            use_cache: true,
            prune: false,
            mask: true,
        }
    }

    /// Sets the result threshold `t`.
    pub fn threshold(mut self, t: usize) -> Self {
        self.threshold = t;
        self
    }

    /// Sets the traversal order.
    pub fn order(mut self, order: TraversalOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables or disables cache participation.
    pub fn use_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Enables or disables occupancy-guided subtree pruning.
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// Enables or disables the keyword-signature scan prefilter.
    pub fn mask(mut self, on: bool) -> Self {
        self.mask = on;
        self
    }

    /// Validates the query (non-zero threshold).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`.
    pub fn validate(&self) -> Result<(), Error> {
        if self.threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        Ok(())
    }
}

/// Cost accounting for one search operation — the quantities the
/// paper's evaluation reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct hypercube nodes that processed the query (the Y axis of
    /// Figures 8 and 9, as a fraction of `2^r`).
    pub nodes_contacted: u64,
    /// `T_QUERY` messages sent.
    pub query_messages: u64,
    /// `T_CONT` / `T_STOP` coordination messages sent back to the root.
    pub control_messages: u64,
    /// Result-delivery messages sent directly to the requester.
    pub result_messages: u64,
    /// Index entries scanned across all contacted nodes.
    pub entries_scanned: u64,
    /// Whether a cache served (part of) the query.
    pub cache_hit: bool,
    /// Parallel rounds used (level-parallel mode only; 0 otherwise).
    pub rounds: u32,
    /// SBT subtrees skipped because an occupancy summary disproved
    /// them (pruning mode only; 0 otherwise).
    pub pruned_subtrees: u64,
}

impl SearchStats {
    /// Total messages of all kinds.
    pub fn total_messages(&self) -> u64 {
        self.query_messages + self.control_messages + self.result_messages
    }
}

/// One search result: an object together with the keyword set it is
/// indexed under and how many keywords it has beyond the query — the
/// ranking signal of §1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedObject {
    /// The matching object.
    pub object: ObjectId,
    /// The full keyword set the object is indexed under (shared with
    /// the index table — cloning a result is pointer-cheap).
    pub keyword_set: std::sync::Arc<KeywordSet>,
    /// `|K_σ| − |K|`: extra keywords beyond the query.
    pub extra_keywords: u32,
}

/// Outcome of a pin search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinOutcome {
    /// Objects indexed under exactly the queried keyword set.
    pub results: Vec<ObjectId>,
    /// Cost accounting (always one node, one query message).
    pub stats: SearchStats,
}

/// Outcome of a superset search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupersetOutcome {
    /// Matching objects in traversal order (top-down: fewest extra
    /// keywords first).
    pub results: Vec<RankedObject>,
    /// Cost accounting.
    pub stats: SearchStats,
    /// Whether the traversal covered the entire subhypercube (`false`
    /// when the threshold stopped it early).
    pub exhausted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builder_defaults() {
        let q = SupersetQuery::new(KeywordSet::parse("a").unwrap());
        assert_eq!(q.threshold, usize::MAX);
        assert_eq!(q.order, TraversalOrder::TopDown);
        assert_eq!(q.mode, ExecutionMode::Sequential);
        assert!(q.use_cache);
        assert!(!q.prune, "pruning is opt-in");
        assert!(q.mask, "signature prefilter is on by default");
        assert!(q.validate().is_ok());
        assert!(!q.clone().mask(false).mask);
        assert!(q.prune(true).prune);
    }

    #[test]
    fn zero_threshold_invalid() {
        let q = SupersetQuery::new(KeywordSet::new()).threshold(0);
        assert_eq!(q.validate(), Err(Error::ZeroThreshold));
    }

    #[test]
    fn stats_total() {
        let stats = SearchStats {
            query_messages: 3,
            control_messages: 2,
            result_messages: 4,
            ..Default::default()
        };
        assert_eq!(stats.total_messages(), 9);
    }
}
