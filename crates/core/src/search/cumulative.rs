//! Cumulative (resumable) superset search (§2.2, §3.3).
//!
//! "Superset search can be designated as *cumulative*, where the results
//! returned by consecutive searches with the same keyword set must be
//! different … implemented by letting the root node `F_h(K)` keep the
//! queue `U` for subsequent queries until the search has completed."
//!
//! [`CumulativeSearch`] is that session state: the frontier queue `U`
//! plus a buffer of scanned-but-undelivered results (a node may hold
//! more matches than the batch needed; the root buffers the overflow so
//! later batches do not re-contact the node).

use std::collections::VecDeque;

use hyperdex_hypercube::Vertex;

use crate::cluster::HypercubeIndex;
use crate::error::Error;
use crate::keyword::KeywordSet;
use crate::search::superset::scan_vertex;
use crate::search::{RankedObject, SearchStats, SupersetOutcome};

/// A resumable top-down superset search over one keyword set.
///
/// # Example
///
/// ```
/// use hyperdex_core::search::cumulative::CumulativeSearch;
/// use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId};
///
/// let mut index = HypercubeIndex::new(8, 0)?;
/// for i in 0..10 {
///     index.insert(
///         ObjectId::from_raw(i),
///         KeywordSet::parse(&format!("rock track{i}"))?,
///     )?;
/// }
/// let mut session = CumulativeSearch::new(&index, KeywordSet::parse("rock")?);
/// let first = session.next_batch(&index, 4)?;
/// let second = session.next_batch(&index, 4)?;
/// assert_eq!(first.results.len(), 4);
/// // Consecutive batches never repeat an object.
/// for r in &second.results {
///     assert!(!first.results.contains(r));
/// }
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct CumulativeSearch {
    keywords: KeywordSet,
    root: Vertex,
    frontier: VecDeque<(Vertex, u8)>,
    pending: VecDeque<RankedObject>,
    root_scanned: bool,
    finished: bool,
    delivered: usize,
}

impl CumulativeSearch {
    /// Opens a session for `keywords` against `index`.
    pub fn new(index: &HypercubeIndex, keywords: KeywordSet) -> Self {
        let root = index.vertex_for(&keywords);
        CumulativeSearch {
            keywords,
            root,
            frontier: VecDeque::new(),
            pending: VecDeque::new(),
            root_scanned: false,
            finished: false,
            delivered: 0,
        }
    }

    /// The queried keyword set.
    pub fn keywords(&self) -> &KeywordSet {
        &self.keywords
    }

    /// Whether the whole subhypercube has been drained.
    pub fn is_finished(&self) -> bool {
        self.finished && self.pending.is_empty()
    }

    /// Total objects delivered across all batches so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Fetches the next `t` results, contacting only as many additional
    /// nodes as needed. Consecutive batches are disjoint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `t == 0`.
    pub fn next_batch(
        &mut self,
        index: &HypercubeIndex,
        t: usize,
    ) -> Result<SupersetOutcome, Error> {
        if t == 0 {
            return Err(Error::ZeroThreshold);
        }
        let mut stats = SearchStats::default();
        let mut results = Vec::with_capacity(t.min(64));

        if !self.root_scanned {
            self.root_scanned = true;
            stats.query_messages += 1;
            stats.nodes_contacted += 1;
            let found = scan_vertex(index, self.root, &self.keywords);
            if !found.is_empty() {
                stats.result_messages += 1;
            }
            self.pending.extend(found);
            self.frontier = self
                .root
                .zero_positions()
                .rev()
                .map(|i| (self.root.flip(i), i))
                .collect();
        }

        loop {
            // Serve buffered results first.
            while results.len() < t {
                match self.pending.pop_front() {
                    Some(r) => results.push(r),
                    None => break,
                }
            }
            if results.len() >= t {
                break;
            }
            // Need more: contact the next frontier node.
            let Some((w, d)) = self.frontier.pop_front() else {
                self.finished = true;
                break;
            };
            stats.query_messages += 1;
            stats.nodes_contacted += 1;
            stats.control_messages += 1; // T_CONT back to the root
            let found = scan_vertex(index, w, &self.keywords);
            if !found.is_empty() {
                stats.result_messages += 1;
            }
            self.pending.extend(found);
            for i in (0..d).rev() {
                if !w.bit(i) {
                    self.frontier.push_back((w.flip(i), i));
                }
            }
        }

        self.delivered += results.len();
        Ok(SupersetOutcome {
            results,
            stats,
            exhausted: self.is_finished(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_dht::ObjectId;

    fn index_with(n: u64) -> (HypercubeIndex, KeywordSet) {
        let mut index = HypercubeIndex::new(8, 0).unwrap();
        for i in 0..n {
            index
                .insert(
                    ObjectId::from_raw(i),
                    KeywordSet::parse(&format!("base extra{i}")).unwrap(),
                )
                .unwrap();
        }
        (index, KeywordSet::parse("base").unwrap())
    }

    #[test]
    fn batches_are_disjoint_and_cover_everything() {
        let (index, q) = index_with(25);
        let mut session = CumulativeSearch::new(&index, q);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        while !session.is_finished() {
            let batch = session.next_batch(&index, 7).unwrap();
            for r in &batch.results {
                assert!(seen.insert(r.object), "duplicate {:?}", r.object);
            }
            total += batch.results.len();
            if batch.results.is_empty() {
                break;
            }
        }
        assert_eq!(total, 25);
        assert_eq!(session.delivered(), 25);
    }

    #[test]
    fn later_batches_skip_already_contacted_nodes() {
        let (index, q) = index_with(40);
        let mut session = CumulativeSearch::new(&index, q.clone());
        let b1 = session.next_batch(&index, 10).unwrap();
        let b2 = session.next_batch(&index, 10).unwrap();
        // Fresh full searches would re-contact the whole prefix; the
        // session only pays for new nodes.
        let fresh_nodes = {
            let mut idx2 = index.clone();
            idx2.superset_search(
                &crate::search::SupersetQuery::new(q)
                    .threshold(20)
                    .use_cache(false),
            )
            .unwrap()
            .stats
            .nodes_contacted
        };
        assert!(
            b1.stats.nodes_contacted + b2.stats.nodes_contacted <= fresh_nodes + 1,
            "cumulative ({} + {}) should not exceed fresh ({})",
            b1.stats.nodes_contacted,
            b2.stats.nodes_contacted,
            fresh_nodes
        );
    }

    #[test]
    fn exhausted_flag_set_at_end() {
        let (index, q) = index_with(3);
        let mut session = CumulativeSearch::new(&index, q);
        let batch = session.next_batch(&index, 100).unwrap();
        assert_eq!(batch.results.len(), 3);
        assert!(batch.exhausted);
        assert!(session.is_finished());
        let empty = session.next_batch(&index, 5).unwrap();
        assert!(empty.results.is_empty());
    }

    #[test]
    fn zero_batch_rejected() {
        let (index, q) = index_with(1);
        let mut session = CumulativeSearch::new(&index, q);
        assert_eq!(session.next_batch(&index, 0), Err(Error::ZeroThreshold));
    }

    #[test]
    fn no_matches_finishes_cleanly() {
        let (index, _) = index_with(5);
        let mut session = CumulativeSearch::new(&index, KeywordSet::parse("absent").unwrap());
        let batch = session.next_batch(&index, 10).unwrap();
        assert!(batch.results.is_empty());
        assert!(session.is_finished());
    }
}
