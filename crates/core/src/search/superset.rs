//! The superset-search protocol (§3.3) and its variants.
//!
//! The sequential top-down protocol is implemented exactly as published:
//! the root `F_h(K)` keeps a frontier queue `U` of `(node, dimension)`
//! pairs and a remaining-count `c`; one `T_QUERY` is outstanding at a
//! time; a contacted node `w` reached via dimension `d` scans its table
//! for entries `K' ⊇ K`, sends matches directly to the requester, and
//! answers the root with `T_STOP` (done) or `T_CONT` carrying its child
//! list `{(x, i) | i < d ∧ i ∈ Zero(w)}`.
//!
//! Variants: bottom-up (deepest tree levels first — most-specific
//! objects first), and level-parallel (§3.5 — whole tree levels queried
//! per round, time `r − |One(F_h(K))|` instead of `2^{r−|One|}`).
//!
//! Hot-path notes: the query's 64-bit keyword signature is computed
//! once per traversal and passed to every per-node scan (the prefilter
//! of [`crate::index`]); the frontier queue and per-node found buffer
//! live in the index's [`SearchScratch`](crate::cluster) and are reused
//! across queries instead of being reallocated per search.

use std::sync::Arc;

use hyperdex_hypercube::Vertex;

use crate::cluster::{HypercubeIndex, SearchScratch};
use crate::error::Error;
use crate::keyword::KeywordSet;
use crate::protocol::FrontierLevels;
use crate::search::{
    ExecutionMode, RankedObject, SearchStats, SupersetOutcome, SupersetQuery, TraversalOrder,
};
use crate::summary::pruned_levels;

/// Runs a superset search against a logical hypercube index.
pub(crate) fn run(
    index: &mut HypercubeIndex,
    query: &SupersetQuery,
) -> Result<SupersetOutcome, Error> {
    query.validate()?;
    let root = index.vertex_for(&query.keywords);
    let mut stats = SearchStats::default();

    // The requester's T_QUERY reaches the root node.
    stats.query_messages += 1;
    stats.nodes_contacted += 1;

    // Cache check at the root. An exhaustive entry serves any
    // threshold; a partial entry serves thresholds it covers.
    if query.use_cache {
        if let Some(cache) = index.cache_mut(root) {
            if let Some(cached) = cache.lookup(&query.keywords, query.threshold) {
                let exhausted = cached.exhausted && cached.results.len() <= query.threshold;
                let results: Vec<RankedObject> = cached
                    .results
                    .iter()
                    .take(query.threshold)
                    .cloned()
                    .collect();
                stats.cache_hit = true;
                stats.result_messages += 1;
                return Ok(SupersetOutcome {
                    results,
                    stats,
                    exhausted,
                });
            }
        }
    }

    // Query signature, computed once for the whole traversal. `0`
    // passes every entry through the prefilter — exactly the
    // pre-optimization unfiltered scan.
    let qsig = if query.mask {
        query.keywords.signature()
    } else {
        0
    };

    // Reusable traversal buffers, moved out for the duration of the
    // search (the traversals borrow the index immutably).
    let mut scratch = index.take_scratch();
    let mut outcome = match query.mode {
        ExecutionMode::Sequential => match query.order {
            TraversalOrder::TopDown => {
                sequential_top_down(index, query, qsig, root, stats, &mut scratch)
            }
            TraversalOrder::BottomUp => by_levels(
                index,
                query,
                qsig,
                root,
                stats,
                /*bottom_up=*/ true,
                &mut scratch,
            ),
        },
        ExecutionMode::LevelParallel => match query.order {
            TraversalOrder::TopDown => {
                level_parallel(index, query, qsig, root, stats, false, &mut scratch)
            }
            TraversalOrder::BottomUp => {
                level_parallel(index, query, qsig, root, stats, true, &mut scratch)
            }
        },
    };
    index.put_scratch(scratch);

    // Cache the traversal's results; the exhausted flag records whether
    // they can serve any threshold or only covered ones. The result vec
    // moves into the cache instead of being deep-copied: the caller's
    // copy is rebuilt (bounded by the threshold — traversals truncate)
    // only when the cache actually kept the entry, and moves back for
    // free when it declined.
    if query.use_cache {
        if let Some(cache) = index.cache_mut(root) {
            let shared = Arc::new(std::mem::take(&mut outcome.results));
            cache.put(
                query.keywords.clone(),
                Arc::clone(&shared),
                outcome.exhausted,
            );
            outcome.results = Arc::try_unwrap(shared)
                .unwrap_or_else(|kept| kept.iter().take(query.threshold).cloned().collect());
        }
    }
    Ok(outcome)
}

/// The paper's sequential top-down protocol.
fn sequential_top_down(
    index: &HypercubeIndex,
    query: &SupersetQuery,
    qsig: u64,
    root: Vertex,
    mut stats: SearchStats,
    scratch: &mut SearchScratch,
) -> SupersetOutcome {
    let mut results = Vec::new();

    // Root scans its own table first.
    scan_node(index, root, query, qsig, &mut results, &mut stats, scratch);
    if results.len() >= query.threshold {
        // Exhausted only if the root is the whole subcube AND nothing
        // was truncated away — a truncated result set must never be
        // cached as complete.
        let exhausted = root.zero_count() == 0 && results.len() == query.threshold;
        results.truncate(query.threshold);
        return SupersetOutcome {
            results,
            stats,
            exhausted,
        };
    }

    // Frontier queue U (reused across searches), initialized with the
    // root's neighbors across every free dimension (descending,
    // matching Sbt::children order). With pruning on, children whose
    // occupancy digest disproves any match (empty region, or
    // keyword-position mask not covering One(F_h(K))) never enter the
    // frontier.
    let required = root.bits();
    let frontier = &mut scratch.frontier;
    frontier.clear();
    for i in root.zero_positions().rev() {
        let child = root.flip(i);
        if query.prune && index.summary().can_prune(child.bits(), i, required) {
            stats.pruned_subtrees += 1;
        } else {
            frontier.push_back((child, i));
        }
    }

    let mut stopped_early = false;
    while let Some((w, d)) = scratch.frontier.pop_front() {
        stats.query_messages += 1;
        stats.nodes_contacted += 1;
        scan_node(index, w, query, qsig, &mut results, &mut stats, scratch);
        if results.len() >= query.threshold {
            results.truncate(query.threshold);
            stats.control_messages += 1; // T_STOP
            stopped_early = true;
            break;
        }
        // T_CONT carrying w's children: free dims below d where w is 0.
        stats.control_messages += 1;
        for i in (0..d).rev() {
            if !w.bit(i) {
                let child = w.flip(i);
                if query.prune && index.summary().can_prune(child.bits(), i, required) {
                    stats.pruned_subtrees += 1;
                } else {
                    scratch.frontier.push_back((child, i));
                }
            }
        }
    }

    SupersetOutcome {
        results,
        stats,
        exhausted: !stopped_early,
    }
}

/// The per-depth frontier the level traversals visit, streamed in
/// visit order: full SBT levels (lazily enumerable at any depth, either
/// direction), or the summary-pruned waves when the query opts in.
///
/// Only the pruned bottom-up combination still materializes the whole
/// tree — the wave expansion is inherently top-down, and deepest-first
/// visiting needs its last wave first. Every other path holds one
/// level at a time.
fn level_stream<'a>(
    index: &'a HypercubeIndex,
    query: &SupersetQuery,
    root: Vertex,
    bottom_up: bool,
    stats: &mut SearchStats,
) -> LevelStream<'a> {
    match (query.prune, bottom_up) {
        (false, false) => LevelStream::Stream(FrontierLevels::full(root)),
        (false, true) => LevelStream::Stream(FrontierLevels::full_bottom_up(root)),
        (true, false) => LevelStream::Stream(FrontierLevels::pruned(index.summary(), root)),
        (true, true) => {
            let (mut levels, pruned) = pruned_levels(index.summary(), root);
            stats.pruned_subtrees += pruned;
            levels.reverse();
            LevelStream::Materialized(levels.into_iter())
        }
    }
}

/// Iterator over per-depth vertex lists in visit order.
enum LevelStream<'a> {
    /// One level in memory at a time.
    Stream(FrontierLevels<'a>),
    /// Pruned bottom-up: pre-expanded, deepest first.
    Materialized(std::vec::IntoIter<Vec<Vertex>>),
}

impl Iterator for LevelStream<'_> {
    type Item = Vec<Vertex>;

    fn next(&mut self) -> Option<Vec<Vertex>> {
        match self {
            LevelStream::Stream(f) => f.next(),
            LevelStream::Materialized(it) => it.next(),
        }
    }
}

impl LevelStream<'_> {
    /// Whether the last yielded level was the final one (always true
    /// for an exhausted materialized stream).
    fn is_done(&self) -> bool {
        match self {
            LevelStream::Stream(f) => f.is_done(),
            LevelStream::Materialized(it) => it.as_slice().is_empty(),
        }
    }

    /// Finishes a pruned expansion after an early exit and folds the
    /// whole-tree pruned count into `stats` — identical accounting to
    /// the materialized implementation.
    fn finish(self, stats: &mut SearchStats) {
        if let LevelStream::Stream(mut f) = self {
            f.drain();
            stats.pruned_subtrees += f.pruned_subtrees();
        }
    }
}

/// Sequential traversal by whole tree levels; `bottom_up` visits the
/// deepest level first (most-specific objects first).
#[allow(clippy::too_many_arguments)]
fn by_levels(
    index: &HypercubeIndex,
    query: &SupersetQuery,
    qsig: u64,
    root: Vertex,
    mut stats: SearchStats,
    bottom_up: bool,
    scratch: &mut SearchScratch,
) -> SupersetOutcome {
    let mut levels = level_stream(index, query, root, bottom_up, &mut stats);
    let mut results = Vec::new();
    let mut stopped_early = false;
    'outer: for level in levels.by_ref() {
        for w in level {
            // The root was already charged for receiving the query.
            if w != root {
                stats.query_messages += 1;
                stats.nodes_contacted += 1;
            }
            scan_node(index, w, query, qsig, &mut results, &mut stats, scratch);
            if w != root {
                stats.control_messages += 1; // T_CONT / T_STOP ack
            }
            if results.len() >= query.threshold {
                results.truncate(query.threshold);
                stopped_early = true;
                break 'outer;
            }
        }
    }
    levels.finish(&mut stats);
    SupersetOutcome {
        results,
        stats,
        exhausted: !stopped_early,
    }
}

/// §3.5's parallel execution: tree levels are queried in rounds; the
/// search stops after the first round that satisfies the threshold.
#[allow(clippy::too_many_arguments)]
fn level_parallel(
    index: &HypercubeIndex,
    query: &SupersetQuery,
    qsig: u64,
    root: Vertex,
    mut stats: SearchStats,
    bottom_up: bool,
    scratch: &mut SearchScratch,
) -> SupersetOutcome {
    let mut levels = level_stream(index, query, root, bottom_up, &mut stats);
    let mut results = Vec::new();
    let mut stopped_early = false;
    // Explicit `next` (not a `for`) so `levels.is_done()` stays
    // callable inside the body for the exhausted verdict.
    while let Some(level) = levels.next() {
        stats.rounds += 1;
        // All level-d nodes are queried simultaneously; results within a
        // round may overshoot the threshold and are truncated afterwards.
        for &w in &level {
            if w != root {
                stats.query_messages += 1;
                stats.nodes_contacted += 1;
            }
            scan_node(index, w, query, qsig, &mut results, &mut stats, scratch);
        }
        if results.len() >= query.threshold {
            // Exhausted only when every level was visited AND nothing
            // was truncated (a truncated set must not be cached as
            // complete).
            stopped_early = !levels.is_done() || results.len() > query.threshold;
            results.truncate(query.threshold);
            break;
        }
    }
    levels.finish(&mut stats);
    SupersetOutcome {
        results,
        stats,
        exhausted: !stopped_early,
    }
}

/// One node's table scan: find entries `K' ⊇ K` (signature prefilter
/// first, string comparison second), rank them locally by
/// extra-keyword count (ascending for top-down preference, descending
/// for bottom-up), and append.
fn scan_node(
    index: &HypercubeIndex,
    vertex: Vertex,
    query: &SupersetQuery,
    qsig: u64,
    results: &mut Vec<RankedObject>,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) {
    let Some(store) = index.store_at(vertex) else {
        return; // logically contacted, but holds nothing
    };
    stats.entries_scanned += store.keyword_set_count() as u64;
    let found = &mut scratch.found;
    found.clear();
    for (keyword_set, objects) in store.superset_entries_sig(&query.keywords, qsig) {
        let extra = (keyword_set.len() - query.keywords.len()) as u32;
        for object in objects {
            found.push(RankedObject {
                object,
                keyword_set: keyword_set.clone(),
                extra_keywords: extra,
            });
        }
    }
    match query.order {
        TraversalOrder::TopDown => found.sort_by_key(|r| r.extra_keywords),
        TraversalOrder::BottomUp => found.sort_by_key(|r| std::cmp::Reverse(r.extra_keywords)),
    }
    if !found.is_empty() {
        stats.result_messages += 1;
    }
    // Drains the scratch buffer, keeping its capacity for the next node.
    results.append(found);
}

/// Shared helper: the matching entries at one vertex, used by the
/// cumulative session as well.
pub(crate) fn scan_vertex(
    index: &HypercubeIndex,
    vertex: Vertex,
    keywords: &KeywordSet,
) -> Vec<RankedObject> {
    let Some(store) = index.store_at(vertex) else {
        return Vec::new();
    };
    let mut found = Vec::new();
    for (keyword_set, objects) in store.superset_entries(keywords) {
        let extra = (keyword_set.len() - keywords.len()) as u32;
        for object in objects {
            found.push(RankedObject {
                object,
                keyword_set: keyword_set.clone(),
                extra_keywords: extra,
            });
        }
    }
    found.sort_by_key(|r| r.extra_keywords);
    found
}
