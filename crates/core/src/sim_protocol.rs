//! Message-level execution of the superset-search protocol.
//!
//! The figure sweeps use the *direct* engine in [`crate::search`] (exact
//! node/message counts, no event loop). This module runs the **same
//! protocol as actual messages** over `hyperdex-simnet`: every logical
//! hypercube node is an endpoint, `T_QUERY` / `T_CONT` / `T_STOP` /
//! result deliveries are messages with latency, and the measured
//! quantity the direct engine cannot give — **elapsed virtual time** —
//! falls out of the event clock. §3.5's claim that level-parallel
//! execution cuts time from `2^{r−|One|}` to `r − |One|` message delays
//! is validated here as an actual latency measurement.
//!
//! # Fault tolerance
//!
//! [`ProtocolSim::search_fault_tolerant`] runs the same traversal
//! against crashed vertices and lossy links (§3.4). The coordinator
//! tracks every outstanding child query with a network timer, retries
//! with exponential backoff up to a budget, and — under
//! [`RecoveryStrategy::Redelegate`] — routes around a dead child by
//! expanding its SBT children directly: by Lemma 3.2 a child's subtree
//! is computable from its bits and arrival dimension alone, so no state
//! from the dead node is needed. [`RecoveryStrategy::ReplicatedFailover`]
//! additionally sweeps the secondary hypercube (a second hash seed, as
//! in [`crate::replication`]) when any vertex stayed dead. Every search
//! returns a [`CoverageReport`] accounting exactly for reached and
//! skipped vertices, retries, timeouts, and messages by kind.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use hyperdex_simnet::latency::LatencyModel;
use hyperdex_simnet::net::{EndpointId, NetEvent, Network, TimerId};
use hyperdex_simnet::time::SimDuration;

use hyperdex_dht::ObjectId;
use hyperdex_hypercube::{Shape, Vertex};

use crate::error::Error;
use crate::hashing::KeywordHasher;
use crate::keyword::KeywordSet;
use crate::protocol::{extend_child_contacts, extend_root_frontier};
use crate::protocol::{FtCmd, FtCoordinator, FtPolicy, Step, SupersetCoordinator};
use crate::search::RankedObject;
use crate::store::{PostingStore, StoreBackend};
use crate::summary::{pruned_levels, OccupancySummary};

/// Protocol messages (§3.3's `T_QUERY`, `T_CONT`, `T_STOP`, plus the
/// direct result deliveries to the requester).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KwMsg {
    /// Query forwarded to one tree node.
    TQuery {
        /// The queried keyword set `K` (interned: every hop shares one
        /// allocation instead of deep-cloning the set per message).
        keywords: Arc<KeywordSet>,
        /// Objects still wanted (`c` in the paper).
        remaining: usize,
        /// Endpoint collecting results (`u`).
        requester: EndpointId,
        /// The dimension via which this node was reached (`d`); `None`
        /// for the initial query to the root.
        via_dim: Option<u8>,
        /// The coordinating root endpoint (`v`).
        root: EndpointId,
    },
    /// Node → root: found `c1` objects, here are my children.
    TCont {
        /// Number of objects this node returned.
        found: usize,
        /// Child contacts `(vertex bits, dimension)`.
        children: Vec<(u64, u8)>,
    },
    /// Node → root: the threshold is satisfied; stop the search.
    TStop,
    /// Node → coordinator, fault-tolerant mode only: the continuation
    /// with results piggybacked, so a retransmitted query re-delivers
    /// them — a separately routed result message would be lost for good
    /// if dropped, even after the traversal recovered.
    TContFt {
        /// The matches found at this node.
        objects: Vec<RankedObject>,
        /// Child contacts `(vertex bits, dimension)`.
        children: Vec<(u64, u8)>,
    },
    /// Node → requester: matching objects.
    Results {
        /// The matches found at one node.
        objects: Vec<RankedObject>,
    },
    /// Host → host, churn mode only: one bounded batch of a vertex's
    /// index entries, streamed during a key-range handoff
    /// (stop-and-wait; see [`crate::churn`]).
    HandoffBatch {
        /// The vertex whose table is being moved.
        bits: u64,
        /// Batch sequence number (0-based).
        seq: u32,
        /// The entries in this batch (keyword sets interned — the batch
        /// shares the sender's allocations).
        entries: Vec<(Arc<KeywordSet>, Vec<ObjectId>)>,
        /// Whether this is the final batch.
        last: bool,
    },
    /// Host → host, churn mode only: acknowledges one handoff batch.
    HandoffAck {
        /// The vertex being moved.
        bits: u64,
        /// The acknowledged sequence number.
        seq: u32,
    },
    /// Secondary-cube vertex → primary host, churn mode only: replica
    /// entries re-pushed by anti-entropy repair after a crash lost the
    /// primary copy.
    RepairPush {
        /// The primary vertex being repaired.
        bits: u64,
        /// The entries restored by this push (keyword sets interned).
        entries: Vec<(Arc<KeywordSet>, Vec<ObjectId>)>,
    },
    /// Vertex → prefix-anchor, churn mode only: a full-state occupancy
    /// refresh for one summary leaf, sent up the anchor chain after a
    /// repair completes or a handoff installs. Carries the leaf's exact
    /// object count; receivers apply it idempotently
    /// ([`crate::summary::OccupancySummary::refresh_leaf`]), so loss or
    /// reordering only prolongs safe over-counting — a stale summary
    /// costs an extra visit, never a missed result.
    TSummary {
        /// The vertex whose occupancy changed.
        bits: u64,
        /// Its exact object count after the change.
        count: u64,
    },
    /// Requester → `F_h(K)`'s host: exact-match pin lookup (§3.2) —
    /// one message to the single vertex the full keyword set hashes to.
    Pin {
        /// The queried keyword set `K` (interned).
        keywords: Arc<KeywordSet>,
        /// Endpoint collecting results.
        requester: EndpointId,
    },
    /// Node → requester: the pin lookup's exact matches.
    PinResults {
        /// Objects indexed under exactly the queried set.
        objects: Vec<ObjectId>,
    },
}

pub use crate::protocol::RecoveryStrategy;

/// Tuning for [`ProtocolSim::search_fault_tolerant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtConfig {
    /// Recovery behaviour on timeout.
    pub strategy: RecoveryStrategy,
    /// Retransmissions per child before declaring it dead.
    pub max_retries: u32,
    /// Timeout for the first attempt; doubles per retry (capped at
    /// `base_timeout × 64`).
    pub base_timeout: SimDuration,
    /// Whether occupancy summaries may prune provably-empty SBT
    /// subtrees before enqueuing them (recall-safe; see
    /// [`crate::summary`]). Off by default.
    pub prune: bool,
}

impl FtConfig {
    /// A sensible default for the given strategy: 4 retries, 16-tick
    /// base timeout, pruning off.
    pub fn new(strategy: RecoveryStrategy) -> Self {
        FtConfig {
            strategy,
            max_retries: 4,
            base_timeout: SimDuration::from_ticks(16),
            prune: false,
        }
    }

    /// Overrides the retry budget.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Overrides the base timeout.
    pub fn base_timeout(mut self, d: SimDuration) -> Self {
        self.base_timeout = d;
        self
    }

    /// Enables or disables occupancy-guided subtree pruning.
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }
}

/// Exact coordinator-side accounting for one fault-tolerant search.
///
/// At quiescence every vertex of the query's induced subcube is either
/// *reached* (it answered), *skipped* (declared dead, or unreachable
/// behind a dead ancestor), or unvisited because the result threshold
/// stopped the traversal early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// The strategy that produced this report.
    pub strategy: RecoveryStrategy,
    /// Vertices in the query's induced subcube (`2^{r−|One|}`).
    pub subcube_vertices: u64,
    /// Distinct vertices confirmed by the coordinator (primary cube).
    pub vertices_reached: u64,
    /// Distinct vertices given up on (primary cube).
    pub vertices_skipped: u64,
    /// Bits of the skipped primary vertices, sorted.
    pub skipped: Vec<u64>,
    /// `T_QUERY` transmissions, including retransmissions.
    pub queries_sent: u64,
    /// Continuation messages the coordinator received.
    pub conts: u64,
    /// Continuations that carried at least one result object.
    pub result_messages: u64,
    /// Retransmissions after a timeout.
    pub retries: u64,
    /// Children declared dead after the retry budget ran out.
    pub timeouts: u64,
    /// Dead children whose subtrees were re-delegated.
    pub redelegations: u64,
    /// SBT subtrees never enqueued because an occupancy summary
    /// disproved them (pruning mode only; 0 otherwise).
    pub pruned_subtrees: u64,
    /// Total vertices inside those pruned subtrees (each counts
    /// `2^{free dims below the arrival dimension}`).
    pub vertices_pruned: u64,
    /// Whether the secondary hypercube was swept.
    pub failed_over: bool,
    /// Vertices reached in the secondary sweep (0 without failover).
    pub secondary_reached: u64,
    /// Vertices skipped in the secondary sweep (0 without failover).
    pub secondary_skipped: u64,
    /// Virtual time from first send to last event.
    pub elapsed: SimDuration,
}

/// Outcome of [`ProtocolSim::search_fault_tolerant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtSearchOutcome {
    /// Deduplicated results in arrival order at the requester.
    pub results: Vec<RankedObject>,
    /// Exact traversal accounting.
    pub coverage: CoverageReport,
}

/// Outcome of a message-level search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSearchOutcome {
    /// Results in arrival order at the requester.
    pub results: Vec<RankedObject>,
    /// Distinct hypercube nodes that processed a `T_QUERY`.
    pub nodes_contacted: u64,
    /// Total messages the network carried.
    pub messages: u64,
    /// Virtual time from first send to last delivery.
    pub elapsed: hyperdex_simnet::time::SimDuration,
    /// SBT subtrees skipped by occupancy-guided pruning (0 unless
    /// [`ProtocolSim::set_pruning`] enabled it).
    pub pruned_subtrees: u64,
}

/// Outcome of a message-level pin search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimPinOutcome {
    /// Objects indexed under exactly the queried set, in arrival order.
    pub results: Vec<ObjectId>,
    /// Total messages the network carried (request + reply).
    pub messages: u64,
    /// Virtual time from send to the reply's delivery.
    pub elapsed: hyperdex_simnet::time::SimDuration,
}

/// Root-side coordinator state for one sequential search: the shared
/// [`SupersetCoordinator`] state machine plus the sim-only bookkeeping
/// (who gets the results, what pruning skipped).
#[derive(Debug)]
struct Coordinator {
    /// The transport-agnostic traversal machine — the same one the
    /// direct engine's driver and the threaded runtime execute.
    core: SupersetCoordinator,
    requester: EndpointId,
    /// Subtrees the coordinator pruned instead of querying.
    pruned: u64,
}

/// A logical hypercube whose nodes exchange real protocol messages.
///
/// # Example
///
/// ```
/// use hyperdex_core::sim_protocol::ProtocolSim;
/// use hyperdex_core::{KeywordSet, ObjectId};
/// use hyperdex_simnet::latency::LatencyModel;
///
/// let mut sim = ProtocolSim::new(6, 0, LatencyModel::constant(1))?;
/// sim.insert(ObjectId::from_raw(1), KeywordSet::parse("a b")?)?;
/// let out = sim.search_sequential(&KeywordSet::parse("a")?, 10)?;
/// assert_eq!(out.results.len(), 1);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ProtocolSim {
    pub(crate) net: Network<KwMsg>,
    pub(crate) shape: Shape,
    pub(crate) hasher: KeywordHasher,
    /// Primary index tables, keyed by vertex bits. Sparse and
    /// deterministic: only occupied vertices cost memory, and
    /// iteration order is ascending bits (churn repair depends on it).
    pub(crate) tables: BTreeMap<u64, PostingStore>,
    /// Posting-storage backend every lazily-created table uses
    /// (`HYPERDEX_STORE`; DESIGN.md §17).
    pub(crate) store: StoreBackend,
    /// Secondary-cube hasher (different seed, same dimension).
    pub(crate) hasher2: KeywordHasher,
    /// Secondary index tables, co-hosted on the same endpoints.
    pub(crate) tables2: BTreeMap<u64, PostingStore>,
    /// Endpoint of vertex `bits`, materialized lazily on first
    /// contact — a cube at `r = 48` costs endpoints only for the
    /// vertices a workload actually touches.
    pub(crate) eps: BTreeMap<u64, EndpointId>,
    /// Reverse map: which vertex an endpoint hosts.
    pub(crate) ep_vertex: HashMap<EndpointId, u64>,
    pub(crate) requester: EndpointId,
    /// One canonical `Arc` per distinct keyword set, shared by both
    /// cubes' tables and by query messages.
    pub(crate) interner: crate::intern::KeywordInterner,
    /// Reused traversal buffers (frontiers, child lists, subtree
    /// enumerations) so searches stop allocating per visit.
    scratch: TraversalScratch,
    /// The seed this simulation was built with (churn derives its ring
    /// placement from it).
    pub(crate) seed: u64,
    /// Occupancy summary of the primary cube (maintained at inserts;
    /// refreshed by `T_SUMMARY` deltas under churn).
    pub(crate) summary: OccupancySummary,
    /// Occupancy summary of the secondary cube.
    pub(crate) summary2: OccupancySummary,
    /// Whether sequential/parallel searches consult the summaries.
    pub(crate) prune: bool,
    /// Live-membership state, present once [`ProtocolSim::enable_churn`]
    /// has been called (boxed: it is large and usually absent).
    pub(crate) churn: Option<Box<crate::churn::ChurnState>>,
}

impl ProtocolSim {
    /// Creates a hypercube of dimension `r`. Vertex endpoints and
    /// index tables are materialized lazily, so construction is O(1)
    /// and memory stays proportional to the vertices actually touched
    /// — `r = 48` is as cheap to build as `r = 6`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn new(r: u8, seed: u64, latency: LatencyModel) -> Result<Self, Error> {
        Self::with_store(r, seed, latency, StoreBackend::from_env())
    }

    /// [`ProtocolSim::new`] with an explicit posting-store backend
    /// instead of the `HYPERDEX_STORE` environment default.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn with_store(
        r: u8,
        seed: u64,
        latency: LatencyModel,
        store: StoreBackend,
    ) -> Result<Self, Error> {
        let hasher = KeywordHasher::new(r, seed)?;
        let shape = hasher.shape();
        let hasher2 = KeywordHasher::new(r, seed ^ crate::replication::SECONDARY_SEED_OFFSET)?;
        let mut net = Network::new(latency, seed ^ 0x51AE);
        let requester = net.add_endpoint();
        Ok(ProtocolSim {
            net,
            shape,
            hasher,
            tables: BTreeMap::new(),
            store,
            hasher2,
            tables2: BTreeMap::new(),
            eps: BTreeMap::new(),
            ep_vertex: HashMap::new(),
            requester,
            interner: crate::intern::KeywordInterner::new(),
            scratch: TraversalScratch::default(),
            seed,
            summary: OccupancySummary::new(r),
            summary2: OccupancySummary::new(r),
            prune: false,
            churn: None,
        })
    }

    /// Enables or disables occupancy-guided pruning for
    /// [`ProtocolSim::search_sequential`] and
    /// [`ProtocolSim::search_parallel`] (fault-tolerant searches opt in
    /// per call via [`FtConfig::prune`]). Off by default; pruning is
    /// recall-safe.
    pub fn set_pruning(&mut self, on: bool) {
        self.prune = on;
    }

    /// The primary cube's occupancy summary.
    pub fn summary(&self) -> &OccupancySummary {
        &self.summary
    }

    /// The hypercube shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Indexes an object at `F_h(keywords)` (local table write; the
    /// DOLR routing cost of inserts is covered by `hyperdex-dht`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] for an empty set.
    pub fn insert(&mut self, object: ObjectId, keywords: KeywordSet) -> Result<(), Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        // Intern: re-inserting a known set (or another object with the
        // same popular set) reuses one Arc across both cubes instead of
        // minting a fresh allocation per call.
        let keywords = self.interner.intern(keywords);
        let vertex = self.hasher.vertex_for(&keywords);
        let vertex2 = self.hasher2.vertex_for(&keywords);
        let backend = self.store;
        if self
            .tables
            .entry(vertex.bits())
            .or_insert_with(|| PostingStore::new(backend))
            .insert_arc(Arc::clone(&keywords), object)
        {
            self.summary.record_insert(vertex.bits());
        }
        if self
            .tables2
            .entry(vertex2.bits())
            .or_insert_with(|| PostingStore::new(backend))
            .insert_arc(keywords, object)
        {
            self.summary2.record_insert(vertex2.bits());
        }
        // Churn's sparse ownership sweep only visits tracked vertices,
        // so a vertex gaining its first postings must join the view.
        if let Some(st) = self.churn.as_deref_mut() {
            st.track_vertex(vertex.bits());
        }
        Ok(())
    }

    /// Runs the paper's sequential top-down protocol as messages.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`.
    pub fn search_sequential(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
    ) -> Result<SimSearchOutcome, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        let root_vertex = self.hasher.vertex_for(keywords);
        let root_ep = self.endpoint_of(root_vertex.bits());
        let start = self.net.now();
        let sent_before = self.net.metrics().messages_sent.get();

        // Interned: repeated queries for the same set share one Arc,
        // and every later hop of this search shares it too.
        let shared_kw = self.interner.intern(keywords.clone());
        self.net.send(
            self.requester,
            root_ep,
            KwMsg::TQuery {
                keywords: shared_kw,
                remaining: threshold,
                requester: self.requester,
                via_dim: None,
                root: root_ep,
            },
        );

        let mut coordinator: Option<Coordinator> = None;
        let mut results = Vec::new();
        let mut contacted = 0u64;
        let mut last_at = start;

        while let Some(d) = self.net.step() {
            last_at = d.at;
            let to = d.to;
            match d.payload {
                KwMsg::TQuery {
                    keywords,
                    remaining,
                    requester,
                    via_dim,
                    root,
                } => {
                    contacted += 1;
                    let vertex = self.vertex_of(to);
                    let found = self.scan_and_reply(vertex, &keywords, remaining, requester, false);
                    if to == root {
                        // The root doubles as coordinator. Its frontier
                        // queue is the sim's reused scratch buffer.
                        let frontier = std::mem::take(&mut self.scratch.frontier);
                        let mut core =
                            SupersetCoordinator::with_queue(vertex, keywords, remaining, frontier);
                        // Consume the machine's root step — this arm IS
                        // that visit — and fold the local scan in.
                        let step = core.next_step();
                        debug_assert_eq!(
                            step,
                            Step::Visit {
                                bits: vertex.bits(),
                                via_dim: None
                            }
                        );
                        let mut children = std::mem::take(&mut self.scratch.children);
                        children.clear();
                        extend_root_frontier(vertex, &mut children);
                        core.record_visit(found, children.drain(..));
                        self.scratch.children = children;
                        let mut coord = Coordinator {
                            core,
                            requester,
                            pruned: 0,
                        };
                        self.advance(&mut coord, root);
                        coordinator = Some(coord);
                    } else {
                        // Ordinary node: report back to the root.
                        let dim = via_dim.expect("non-root nodes are reached via a dimension");
                        if found >= remaining {
                            self.net.send(to, root, KwMsg::TStop);
                        } else {
                            let mut children = Vec::with_capacity(dim as usize);
                            extend_child_contacts(vertex, dim, &mut children);
                            self.net.send(to, root, KwMsg::TCont { found, children });
                        }
                    }
                }
                KwMsg::TCont { found, children } => {
                    let coord = coordinator.as_mut().expect("TCont implies a coordinator");
                    coord.core.record_visit(found, children);
                    self.advance_boxed(&mut coordinator, to);
                }
                KwMsg::TStop => {
                    if let Some(coord) = coordinator.as_mut() {
                        coord.core.stop();
                    }
                }
                KwMsg::Results { objects } => {
                    debug_assert_eq!(to, self.requester);
                    results.extend(objects);
                }
                // Fault-tolerant-/churn-/pin-mode messages; never sent
                // by this path (churned networks search via
                // `search_fault_tolerant`).
                KwMsg::TContFt { .. }
                | KwMsg::HandoffBatch { .. }
                | KwMsg::HandoffAck { .. }
                | KwMsg::RepairPush { .. }
                | KwMsg::TSummary { .. }
                | KwMsg::Pin { .. }
                | KwMsg::PinResults { .. } => {}
            }
        }

        // Reclaim the frontier buffer for the next search.
        let pruned_subtrees = match coordinator {
            Some(c) => {
                self.scratch.frontier = c.core.into_queue();
                c.pruned
            }
            None => 0,
        };
        results.truncate(threshold);
        Ok(SimSearchOutcome {
            results,
            nodes_contacted: contacted,
            messages: self.net.metrics().messages_sent.get() - sent_before,
            elapsed: last_at.saturating_since(start),
            pruned_subtrees,
        })
    }

    /// Runs the paper's pin search (§3.2) as messages: one `Pin` to the
    /// vertex the full keyword set hashes to, one `PinResults` back.
    pub fn pin_search(&mut self, keywords: &KeywordSet) -> SimPinOutcome {
        let vertex = self.hasher.vertex_for(keywords);
        let ep = self.endpoint_of(vertex.bits());
        let start = self.net.now();
        let sent_before = self.net.metrics().messages_sent.get();
        let shared_kw = self.interner.intern(keywords.clone());
        self.net.send(
            self.requester,
            ep,
            KwMsg::Pin {
                keywords: shared_kw,
                requester: self.requester,
            },
        );

        let mut results = Vec::new();
        let mut last_at = start;
        while let Some(d) = self.net.step() {
            last_at = d.at;
            let to = d.to;
            match d.payload {
                KwMsg::Pin {
                    keywords,
                    requester,
                } => {
                    let vertex = self.vertex_of(to);
                    let objects: Vec<ObjectId> = self
                        .tables
                        .get(&vertex.bits())
                        .map(|t| t.objects_with(&keywords).collect())
                        .unwrap_or_default();
                    self.net.send(to, requester, KwMsg::PinResults { objects });
                }
                KwMsg::PinResults { objects } => {
                    debug_assert_eq!(to, self.requester);
                    results.extend(objects);
                }
                // Traversal/churn messages cannot appear: every search
                // drains the network before returning.
                KwMsg::TQuery { .. }
                | KwMsg::TCont { .. }
                | KwMsg::TStop
                | KwMsg::TContFt { .. }
                | KwMsg::Results { .. }
                | KwMsg::HandoffBatch { .. }
                | KwMsg::HandoffAck { .. }
                | KwMsg::RepairPush { .. }
                | KwMsg::TSummary { .. } => {}
            }
        }

        SimPinOutcome {
            results,
            messages: self.net.metrics().messages_sent.get() - sent_before,
            elapsed: last_at.saturating_since(start),
        }
    }

    /// Runs the §3.5 level-parallel variant as messages: the root
    /// queries whole SBT levels in rounds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`.
    pub fn search_parallel(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
    ) -> Result<SimSearchOutcome, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        let root_vertex = self.hasher.vertex_for(keywords);
        let root_ep = self.endpoint_of(root_vertex.bits());
        let start = self.net.now();
        let sent_before = self.net.metrics().messages_sent.get();

        // Interned: every per-node query (and repeat searches for the
        // same set) share one allocation.
        let shared_kw = self.interner.intern(keywords.clone());
        // With pruning on, whole levels shrink to the vertices whose
        // subtree the occupancy summary cannot disprove; the pruned
        // expansion is materialized up front (the wave needs
        // `&self.summary`, which the message loop below cannot hold
        // across `&mut self`). The unpruned path streams one level at
        // a time from [`crate::protocol::FrontierLevels`] — an early
        // threshold exit never enumerates the deeper levels at all.
        let mut pruned_count = 0;
        let mut materialized = if self.prune {
            let (levels, pruned) = pruned_levels(&self.summary, root_vertex);
            pruned_count = pruned;
            Some(levels.into_iter())
        } else {
            None
        };
        let mut streamed = if self.prune {
            None
        } else {
            Some(crate::protocol::FrontierLevels::full(root_vertex))
        };

        let mut results = Vec::new();
        let mut contacted = 0u64;
        let mut last_at = start;
        let mut satisfied = 0usize;
        let mut depth = 0usize;

        'levels: loop {
            let level = match (&mut materialized, &mut streamed) {
                (Some(levels), _) => levels.next(),
                (None, Some(frontier)) => frontier.next(),
                (None, None) => unreachable!("one level source is always set"),
            };
            let Some(level) = level else { break 'levels };
            // The root addresses every level-d node directly (any node
            // is reachable through the underlying DHT).
            for w in &level {
                let from = if depth == 0 { self.requester } else { root_ep };
                let to = self.endpoint_of(w.bits());
                self.net.send(
                    from,
                    to,
                    KwMsg::TQuery {
                        keywords: Arc::clone(&shared_kw),
                        remaining: threshold - satisfied.min(threshold),
                        requester: self.requester,
                        via_dim: None,
                        root: root_ep,
                    },
                );
            }
            // Synchronize the round: deliver everything in flight.
            while let Some(d) = self.net.step() {
                last_at = d.at;
                match d.payload {
                    KwMsg::TQuery {
                        keywords,
                        remaining,
                        requester,
                        ..
                    } => {
                        contacted += 1;
                        let vertex = self.vertex_of(d.to);
                        self.scan_and_reply(vertex, &keywords, remaining, requester, false);
                    }
                    KwMsg::Results { objects } => {
                        satisfied += objects.len();
                        results.extend(objects);
                    }
                    KwMsg::TCont { .. }
                    | KwMsg::TStop
                    | KwMsg::TContFt { .. }
                    | KwMsg::HandoffBatch { .. }
                    | KwMsg::HandoffAck { .. }
                    | KwMsg::RepairPush { .. }
                    | KwMsg::TSummary { .. }
                    | KwMsg::Pin { .. }
                    | KwMsg::PinResults { .. } => {}
                }
            }
            if satisfied >= threshold {
                break 'levels;
            }
            depth += 1;
        }

        results.truncate(threshold);
        Ok(SimSearchOutcome {
            results,
            nodes_contacted: contacted,
            messages: self.net.metrics().messages_sent.get() - sent_before,
            elapsed: last_at.saturating_since(start),
            pruned_subtrees: pruned_count,
        })
    }

    /// Runs the fault-tolerant superset search (§3.4).
    ///
    /// The traversal is an eager SBT walk: the coordinator (the query
    /// root, or the requester if the root is dead) tracks every
    /// outstanding child query with a network timer, retransmits with
    /// exponential backoff up to `config.max_retries`, and applies
    /// `config.strategy` once a child's budget is exhausted. The event
    /// loop drains the network to quiescence, so the search terminates
    /// even when every vertex is dead — losses show up as skipped
    /// vertices in the [`CoverageReport`], never as a hang.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`, and
    /// [`Error::ZeroTimeout`] when the strategy needs timers but
    /// `config.base_timeout` is zero.
    pub fn search_fault_tolerant(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
        config: FtConfig,
    ) -> Result<FtSearchOutcome, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        if config.strategy != RecoveryStrategy::Naive && config.base_timeout.ticks() == 0 {
            return Err(Error::ZeroTimeout);
        }
        let start = self.net.now();
        let mut results = Vec::new();
        let mut seen = HashSet::new();
        let primary = self.run_ft_pass(keywords, threshold, config, false, &mut results, &mut seen);
        let mut report = CoverageReport {
            strategy: config.strategy,
            subcube_vertices: primary.subcube_vertices,
            vertices_reached: primary.reached,
            vertices_skipped: primary.skipped.len() as u64,
            skipped: primary.skipped.to_vec(),
            queries_sent: primary.queries_sent,
            conts: primary.conts,
            result_messages: primary.result_messages,
            retries: primary.retries,
            timeouts: primary.timeouts,
            redelegations: primary.redelegations,
            pruned_subtrees: primary.pruned_subtrees,
            vertices_pruned: primary.vertices_pruned,
            failed_over: false,
            secondary_reached: 0,
            secondary_skipped: 0,
            elapsed: SimDuration::ZERO,
        };
        if config.strategy == RecoveryStrategy::ReplicatedFailover && !primary.skipped.is_empty() {
            // Objects homed on the skipped vertices are lost to the
            // primary sweep; recover them from the secondary cube. The
            // sweep itself recovers via re-delegation (no third cube to
            // fail over to).
            report.failed_over = true;
            self.net.metrics_mut().failovers.incr();
            let cfg2 = FtConfig {
                strategy: RecoveryStrategy::Redelegate,
                ..config
            };
            let sec = self.run_ft_pass(keywords, threshold, cfg2, true, &mut results, &mut seen);
            report.secondary_reached = sec.reached;
            report.secondary_skipped = sec.skipped.len() as u64;
            report.queries_sent += sec.queries_sent;
            report.conts += sec.conts;
            report.result_messages += sec.result_messages;
            report.retries += sec.retries;
            report.timeouts += sec.timeouts;
            report.redelegations += sec.redelegations;
            report.pruned_subtrees += sec.pruned_subtrees;
            report.vertices_pruned += sec.vertices_pruned;
        }
        report.elapsed = self.net.now().saturating_since(start);
        results.truncate(threshold);
        Ok(FtSearchOutcome {
            results,
            coverage: report,
        })
    }

    /// One coordinator-driven sweep over the primary or secondary cube.
    ///
    /// The recovery logic itself — retry budgets, backoff, subtree
    /// re-delegation, coverage accounting — lives in the shared
    /// sans-I/O [`FtCoordinator`]; this method is only the simnet
    /// substrate: it turns [`FtCmd`]s into messages and virtual-time
    /// timers, scans vertices, and feeds deliveries and expirations
    /// back into the machine. The threaded runtime drives the *same*
    /// machine over wire frames and wall-clock deadlines.
    fn run_ft_pass(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
        config: FtConfig,
        secondary: bool,
        results: &mut Vec<RankedObject>,
        seen: &mut HashSet<ObjectId>,
    ) -> PassStats {
        // KeywordHasher is Copy; copying sidesteps a borrow across the
        // lazy endpoint materialization below.
        let hasher = if secondary { self.hasher2 } else { self.hasher };
        let root_vertex = hasher.vertex_for(keywords);
        let root_ep = self.endpoint_of(root_vertex.bits());
        // Interned: every (re)transmission of this pass shares it.
        let kw = self.interner.intern(keywords.clone());
        let prune = config.prune.then(|| FtPrune {
            required: root_vertex.bits(),
            zero_mask: root_vertex.zero_positions().fold(0u64, |m, i| m | 1 << i),
            secondary,
        });

        let mut core = FtCoordinator::new(
            root_vertex,
            Arc::clone(&kw),
            threshold,
            FtPolicy {
                strategy: config.strategy,
                max_retries: config.max_retries,
                base_timeout: config.base_timeout.ticks(),
            },
        );
        let mut extra = PassExtra::default();
        // Coordinator endpoint: the root, until a dead root promotes
        // the requester (`FtCmd::Promote`).
        let mut coord = root_ep;
        // Armed retransmission timers by vertex bits; a fired timer
        // must match the armed id or it is stale.
        let mut timers: HashMap<u64, TimerId> = HashMap::new();
        let mut cmds = Vec::new();

        core.start(&mut cmds);
        self.ft_exec(&core, &mut cmds, &kw, &mut coord, &mut timers);

        while let Some(ev) = self.net.step_event() {
            // Churn traffic (membership timers, handoff batches, repair
            // pushes) interleaves with the search on the same network;
            // it is consumed here, before the search's own Timer arm
            // would discard its tokens as stale.
            let Some(ev) = self.churn_intercept(ev) else {
                continue;
            };
            match ev {
                NetEvent::Delivery(d) => {
                    let (to, from) = (d.to, d.from);
                    match d.payload {
                        KwMsg::TQuery {
                            keywords: qkw,
                            remaining: rem,
                            via_dim,
                            root,
                            ..
                        } => {
                            let vertex = self.vertex_of(to);
                            if self.churn_vertex_silent(vertex.bits()) {
                                // Mid-handoff or crashed-unreassigned:
                                // the vertex stays silent, so the
                                // coordinator's timer makes it a
                                // retriable target — a later retry can
                                // succeed once the handoff lands.
                                continue;
                            }
                            if to == coord && via_dim.is_none() {
                                // The root doubles as coordinator: it
                                // scans locally, no self-messages.
                                let bits = vertex.bits();
                                if core.is_covered(bits) {
                                    continue; // duplicate of a retried query
                                }
                                let objects = self.scan(vertex, &qkw, rem, secondary);
                                let added = ft_record(objects, results, seen);
                                let mut children = std::mem::take(&mut self.scratch.children);
                                children.clear();
                                extend_root_frontier(vertex, &mut children);
                                core.on_reply(
                                    bits,
                                    added,
                                    &children,
                                    |b, dim| self.ft_try_prune(prune, &mut extra, b, dim),
                                    &mut cmds,
                                );
                                self.scratch.children = children;
                                self.ft_exec(&core, &mut cmds, &kw, &mut coord, &mut timers);
                            } else {
                                // Ordinary node: continuation back to
                                // the coordinator named in the query,
                                // results piggybacked so retransmitted
                                // queries re-deliver them.
                                let objects = self.scan(vertex, &qkw, rem, secondary);
                                let mut children = Vec::new();
                                match via_dim {
                                    Some(dim) => extend_child_contacts(vertex, dim, &mut children),
                                    None => extend_root_frontier(vertex, &mut children),
                                }
                                if root != to {
                                    self.net
                                        .send(to, root, KwMsg::TContFt { objects, children });
                                }
                            }
                        }
                        KwMsg::TContFt { objects, children } => {
                            if to != coord {
                                continue; // stale coordinator address
                            }
                            extra.conts += 1;
                            if !objects.is_empty() {
                                extra.result_messages += 1;
                            }
                            let added = ft_record(objects, results, seen);
                            let bits = self.vertex_of(from).bits();
                            core.on_reply(
                                bits,
                                added,
                                &children,
                                |b, dim| self.ft_try_prune(prune, &mut extra, b, dim),
                                &mut cmds,
                            );
                            self.ft_exec(&core, &mut cmds, &kw, &mut coord, &mut timers);
                        }
                        // Legacy sequential/parallel variants cannot
                        // appear mid-pass (every search drains the
                        // network first); ignore them defensively.
                        // Churn messages were consumed by the intercept
                        // above.
                        KwMsg::TCont { .. }
                        | KwMsg::TStop
                        | KwMsg::Results { .. }
                        | KwMsg::HandoffBatch { .. }
                        | KwMsg::HandoffAck { .. }
                        | KwMsg::RepairPush { .. }
                        | KwMsg::TSummary { .. }
                        | KwMsg::Pin { .. }
                        | KwMsg::PinResults { .. } => {}
                    }
                }
                NetEvent::Timer(t) => {
                    let bits = t.token;
                    if timers.get(&bits) != Some(&t.id) || core.is_done() {
                        continue; // stale timer
                    }
                    timers.remove(&bits);
                    let (deaths, redelegs) = (core.timeouts(), core.redelegations());
                    core.on_timeout(
                        bits,
                        |b, dim| self.ft_try_prune(prune, &mut extra, b, dim),
                        &mut cmds,
                    );
                    if core.timeouts() > deaths {
                        self.net.metrics_mut().timeouts.incr();
                    }
                    if core.redelegations() > redelegs {
                        self.net.metrics_mut().redelegations.incr();
                    }
                    self.ft_exec(&core, &mut cmds, &kw, &mut coord, &mut timers);
                }
            }
        }

        // Quiescence: the machine accounts queries still outstanding
        // (no timers were armed, or the coordinator died) as skipped
        // subtrees.
        let cov = core.finish();
        PassStats {
            subcube_vertices: cov.subcube_vertices,
            reached: cov.reached,
            skipped: cov.skipped,
            queries_sent: cov.queries_sent,
            conts: extra.conts,
            result_messages: extra.result_messages,
            retries: cov.retries,
            timeouts: cov.timeouts,
            redelegations: cov.redelegations,
            pruned_subtrees: extra.pruned_subtrees,
            vertices_pruned: extra.vertices_pruned,
        }
    }

    /// Executes the machine's pending commands over simnet transport:
    /// `Send` becomes a `T_QUERY` (plus a virtual-time timer when
    /// armed), `Cancel` disarms, `Promote` redirects the coordinator to
    /// the requester.
    fn ft_exec(
        &mut self,
        core: &FtCoordinator,
        cmds: &mut Vec<FtCmd>,
        keywords: &Arc<KeywordSet>,
        coord: &mut EndpointId,
        timers: &mut HashMap<u64, TimerId>,
    ) {
        for cmd in cmds.drain(..) {
            match cmd {
                FtCmd::Promote => *coord = self.requester,
                FtCmd::Cancel { bits } => {
                    if let Some(t) = timers.remove(&bits) {
                        self.net.cancel_timer(t);
                    }
                }
                FtCmd::Send {
                    bits,
                    via_dim,
                    attempt,
                    timeout,
                } => {
                    if attempt > 0 {
                        self.net.metrics_mut().retries.incr();
                    }
                    // The requester owns the root query and its retries
                    // (the root itself may be dead); the coordinator
                    // owns every child query.
                    let owner = if via_dim.is_none() {
                        self.requester
                    } else {
                        *coord
                    };
                    self.ft_send_query(owner, bits, via_dim, keywords, core.remaining(), *coord);
                    if let Some(ticks) = timeout {
                        let timer = self
                            .net
                            .set_timer(owner, SimDuration::from_ticks(ticks), bits);
                        timers.insert(bits, timer);
                    }
                }
            }
        }
    }

    /// Prune filter handed to the shared machine: consults the
    /// occupancy summary of the swept cube and accounts what it
    /// disproves.
    fn ft_try_prune(
        &self,
        prune: Option<FtPrune>,
        extra: &mut PassExtra,
        bits: u64,
        dim: u8,
    ) -> bool {
        let Some(p) = prune else {
            return false;
        };
        let summary = if p.secondary {
            &self.summary2
        } else {
            &self.summary
        };
        if summary.can_prune(bits, dim, p.required) {
            extra.pruned_subtrees += 1;
            // The child's subtree spans the free dims strictly below
            // its arrival dimension.
            let free_below = (p.zero_mask & ((1u64 << dim) - 1)).count_ones();
            extra.vertices_pruned += 1u64 << free_below;
            true
        } else {
            false
        }
    }

    /// Sends one `T_QUERY` for the fault-tolerant traversal.
    fn ft_send_query(
        &mut self,
        from: EndpointId,
        bits: u64,
        via_dim: Option<u8>,
        keywords: &Arc<KeywordSet>,
        remaining: usize,
        coord: EndpointId,
    ) {
        let to = self.endpoint_of(bits);
        self.net.send(
            from,
            to,
            KwMsg::TQuery {
                keywords: Arc::clone(keywords),
                remaining,
                requester: self.requester,
                via_dim,
                root: coord,
            },
        );
    }

    /// Scans a vertex's table (primary or secondary) for supersets of
    /// `keywords`, returning at most `remaining` matches.
    fn scan(
        &self,
        vertex: Vertex,
        keywords: &KeywordSet,
        remaining: usize,
        secondary: bool,
    ) -> Vec<RankedObject> {
        let tables = if secondary {
            &self.tables2
        } else {
            &self.tables
        };
        // Unmaterialized vertex: logically contacted, holds nothing
        // (`scan_store` treats `None` exactly that way).
        crate::protocol::scan_store(tables.get(&vertex.bits()), keywords, remaining)
    }

    /// Scans a vertex's table, sends matches to the requester, and
    /// returns how many were sent.
    fn scan_and_reply(
        &mut self,
        vertex: Vertex,
        keywords: &KeywordSet,
        remaining: usize,
        requester: EndpointId,
        secondary: bool,
    ) -> usize {
        let found = self.scan(vertex, keywords, remaining, secondary);
        let count = found.len();
        if count > 0 {
            let from = self.endpoint_of(vertex.bits());
            self.net
                .send(from, requester, KwMsg::Results { objects: found });
        }
        count
    }

    /// Pops the coordinator's next frontier node and queries it, or
    /// marks the search done.
    fn advance(&mut self, coord: &mut Coordinator, root_ep: EndpointId) {
        // With pruning on, provably-empty frontier entries are consumed
        // (and counted) without sending anything; the coordinator
        // carries `One(F_h(K))` explicitly.
        loop {
            match coord.core.next_step() {
                Step::Finished => return,
                Step::Visit { bits, via_dim } => {
                    let dim = via_dim.expect("the root visit was consumed at creation");
                    if self.prune && self.summary.can_prune(bits, dim, coord.core.root_bits()) {
                        coord.pruned += 1;
                        continue;
                    }
                    let to = self.endpoint_of(bits);
                    self.net.send(
                        root_ep,
                        to,
                        KwMsg::TQuery {
                            keywords: Arc::clone(coord.core.keywords()),
                            remaining: coord.core.remaining(),
                            requester: coord.requester,
                            via_dim: Some(dim),
                            root: root_ep,
                        },
                    );
                    return;
                }
            }
        }
    }

    /// `advance` through the `Option` wrapper (borrow-checker helper).
    fn advance_boxed(&mut self, coordinator: &mut Option<Coordinator>, root_ep: EndpointId) {
        if let Some(mut coord) = coordinator.take() {
            self.advance(&mut coord, root_ep);
            *coordinator = Some(coord);
        }
    }

    fn vertex_of(&self, ep: EndpointId) -> Vertex {
        let bits = *self
            .ep_vertex
            .get(&ep)
            .expect("queries target vertex endpoints");
        Vertex::from_bits(self.shape, bits).expect("mapped bits are valid vertices")
    }

    /// Read access to the underlying network (metrics, faults).
    pub fn network(&self) -> &Network<KwMsg> {
        &self.net
    }

    /// Mutable access to the underlying network, for fault injection
    /// (kills, outages, link loss) in tests and experiments.
    pub fn network_mut(&mut self) -> &mut Network<KwMsg> {
        &mut self.net
    }

    /// The vertex a query hashes to (the traversal root), in the
    /// primary cube.
    pub fn query_root(&self, keywords: &KeywordSet) -> Vertex {
        self.hasher.vertex_for(keywords)
    }

    /// The endpoint hosting vertex `bits`, materializing it lazily on
    /// first contact.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside the cube.
    pub fn endpoint_of(&mut self, bits: u64) -> EndpointId {
        assert!(
            self.shape.check_bits(bits).is_ok(),
            "vertex {bits:#x} outside H_{}",
            self.shape.r()
        );
        if let Some(&ep) = self.eps.get(&bits) {
            return ep;
        }
        let ep = self.net.add_endpoint();
        self.eps.insert(bits, ep);
        self.ep_vertex.insert(ep, bits);
        ep
    }

    /// How many vertices have materialized state (an endpoint or an
    /// index table in either cube) — the sparse-storage footprint.
    pub fn materialized_vertices(&self) -> usize {
        // Endpoints are a superset of table-bearing vertices only after
        // they have been contacted; count the union explicitly.
        let mut bits: BTreeSet<u64> = self.eps.keys().copied().collect();
        bits.extend(self.tables.keys());
        bits.extend(self.tables2.keys());
        bits.len()
    }
}

/// Reused traversal buffers; every user clears before filling, so
/// contents never leak between searches — only capacity does.
#[derive(Debug, Default)]
struct TraversalScratch {
    /// Sequential coordinator's frontier queue `U`.
    frontier: VecDeque<(u64, u8)>,
    /// Child-contact list for enqueue/redelegation rounds.
    children: Vec<(u64, u8)>,
}

/// Per-pass accounting for the fault-tolerant traversal (the machine's
/// [`crate::protocol::FtCoverage`] plus substrate-side counters).
#[derive(Debug, Default)]
struct PassStats {
    subcube_vertices: u64,
    reached: u64,
    /// Bits of the skipped vertices, sorted ascending.
    skipped: Vec<u64>,
    queries_sent: u64,
    conts: u64,
    result_messages: u64,
    retries: u64,
    timeouts: u64,
    redelegations: u64,
    pruned_subtrees: u64,
    vertices_pruned: u64,
}

/// Counters the shared machine doesn't track: message-kind tallies and
/// pruning accounting, owned by the simnet substrate.
#[derive(Debug, Default)]
struct PassExtra {
    conts: u64,
    result_messages: u64,
    pruned_subtrees: u64,
    vertices_pruned: u64,
}

/// Pass-constant pruning context for the fault-tolerant traversal.
#[derive(Debug, Clone, Copy)]
struct FtPrune {
    /// `One(F_h(K))`: the keyword positions every match must cover.
    required: u64,
    /// Mask of the query root's free dimensions (subtree sizing).
    zero_mask: u64,
    /// Whether this pass sweeps the secondary cube.
    secondary: bool,
}

/// Dedups `objects` into `results` by object id, returning how many
/// were new.
fn ft_record(
    objects: Vec<RankedObject>,
    results: &mut Vec<RankedObject>,
    seen: &mut HashSet<ObjectId>,
) -> usize {
    let mut added = 0;
    for obj in objects {
        if seen.insert(obj.object) {
            results.push(obj);
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::HypercubeIndex;
    use crate::search::SupersetQuery;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    /// Builds both the direct index and the protocol sim with identical
    /// content.
    fn twin(r: u8, objects: &[(u64, &str)]) -> (HypercubeIndex, ProtocolSim) {
        let mut direct = HypercubeIndex::new(r, 0).unwrap();
        let mut sim = ProtocolSim::new(r, 0, LatencyModel::constant(1)).unwrap();
        for &(id, kws) in objects {
            direct.insert(oid(id), set(kws)).unwrap();
            sim.insert(oid(id), set(kws)).unwrap();
        }
        (direct, sim)
    }

    const CORPUS: &[(u64, &str)] = &[
        (1, "a"),
        (2, "a b"),
        (3, "a b c"),
        (4, "a c"),
        (5, "b c"),
        (6, "a d e"),
        (7, "x y"),
        (8, "a b d"),
    ];

    #[test]
    fn sequential_matches_direct_engine() {
        let (mut direct, mut sim) = twin(8, CORPUS);
        for query in ["a", "a b", "b", "x", "zzz"] {
            let d = direct
                .superset_search(&SupersetQuery::new(set(query)).use_cache(false))
                .unwrap();
            let s = sim.search_sequential(&set(query), usize::MAX - 1).unwrap();
            let mut d_ids: Vec<ObjectId> = d.results.iter().map(|r| r.object).collect();
            let mut s_ids: Vec<ObjectId> = s.results.iter().map(|r| r.object).collect();
            d_ids.sort_unstable();
            s_ids.sort_unstable();
            assert_eq!(d_ids, s_ids, "query {query}");
            assert_eq!(
                d.stats.nodes_contacted, s.nodes_contacted,
                "node parity for {query}"
            );
        }
    }

    #[test]
    fn pin_matches_direct_engine() {
        let (direct, mut sim) = twin(8, CORPUS);
        for query in ["a", "a b", "a b c", "x y", "zzz"] {
            let d = direct.pin_search(&set(query));
            let s = sim.pin_search(&set(query));
            let mut d_ids = d.results.clone();
            let mut s_ids = s.results.clone();
            d_ids.sort_unstable();
            s_ids.sort_unstable();
            assert_eq!(d_ids, s_ids, "pin parity for {query}");
            // Exactly one request and one reply — the reply is sent
            // even when empty, so the requester observes completion.
            assert_eq!(s.messages, 2, "message count for {query}");
        }
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let (_, mut sim) = twin(8, CORPUS);
        let seq = sim.search_sequential(&set("a"), 100).unwrap();
        let par = sim.search_parallel(&set("a"), 100).unwrap();
        let mut a: Vec<ObjectId> = seq.results.iter().map(|r| r.object).collect();
        let mut b: Vec<ObjectId> = par.results.iter().map(|r| r.object).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_is_faster_sequential_cheaper_in_messages() {
        // A query whose subcube is big enough to show the asymmetry.
        let (_, mut sim) = twin(10, CORPUS);
        let seq = sim.search_sequential(&set("a"), usize::MAX - 1).unwrap();
        let par = sim.search_parallel(&set("a"), usize::MAX - 1).unwrap();
        assert!(
            par.elapsed < seq.elapsed,
            "parallel {} vs sequential {} ticks",
            par.elapsed,
            seq.elapsed
        );
        // §3.5: sequential time ≈ 2 messages per node (query + ack);
        // parallel time ≈ tree height × one latency per level + replies.
        assert!(
            seq.elapsed.ticks() >= seq.nodes_contacted,
            "sequential latency grows with every contacted node"
        );
    }

    #[test]
    fn threshold_stops_early_with_tstop() {
        let (_, mut sim) = twin(8, CORPUS);
        let full = sim.search_sequential(&set("a"), 100).unwrap();
        let early = sim.search_sequential(&set("a"), 1).unwrap();
        assert_eq!(early.results.len(), 1);
        assert!(
            early.nodes_contacted < full.nodes_contacted,
            "T_STOP must cut the traversal: {} vs {}",
            early.nodes_contacted,
            full.nodes_contacted
        );
    }

    #[test]
    fn elapsed_time_accounts_latency() {
        let mut slow = ProtocolSim::new(6, 0, LatencyModel::constant(10)).unwrap();
        slow.insert(oid(1), set("k")).unwrap();
        let out = slow.search_sequential(&set("k"), 10).unwrap();
        assert!(out.elapsed.ticks() >= 10, "at least one 10-tick hop");
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn zero_threshold_rejected() {
        let (_, mut sim) = twin(6, CORPUS);
        assert!(sim.search_sequential(&set("a"), 0).is_err());
        assert!(sim.search_parallel(&set("a"), 0).is_err());
    }

    #[test]
    fn empty_query_browses_whole_cube() {
        let (_, mut sim) = twin(6, &[(1, "p"), (2, "q")]);
        let out = sim.search_sequential(&KeywordSet::new(), 100).unwrap();
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.nodes_contacted, 64, "empty query spans the full cube");
    }

    #[test]
    fn rejects_oversized_dimension() {
        // r = 17 used to be rejected because the sim allocated dense
        // 2^r state; with sparse vertex storage only the hash family's
        // own 1 ≤ r ≤ 63 bound remains.
        assert!(ProtocolSim::new(17, 0, LatencyModel::default()).is_ok());
        assert!(ProtocolSim::new(64, 0, LatencyModel::default()).is_err());
        assert!(ProtocolSim::new(0, 0, LatencyModel::default()).is_err());
    }

    // ------------------------------------------------------------------
    // Fault-tolerant search
    // ------------------------------------------------------------------

    const BIG: usize = usize::MAX >> 1;

    fn ft(strategy: RecoveryStrategy) -> FtConfig {
        FtConfig::new(strategy).max_retries(10)
    }

    fn ids(results: &[RankedObject]) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = results.iter().map(|r| r.object).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn ft_fault_free_matches_sequential() {
        for strategy in [
            RecoveryStrategy::Naive,
            RecoveryStrategy::RetryOnly,
            RecoveryStrategy::Redelegate,
            RecoveryStrategy::ReplicatedFailover,
        ] {
            let (_, mut sim) = twin(8, CORPUS);
            let seq = sim.search_sequential(&set("a"), BIG).unwrap();
            let out = sim
                .search_fault_tolerant(&set("a"), BIG, ft(strategy))
                .unwrap();
            assert_eq!(ids(&seq.results), ids(&out.results), "{strategy:?}");
            let c = &out.coverage;
            assert_eq!(c.vertices_reached, c.subcube_vertices, "{strategy:?}");
            assert_eq!(c.vertices_skipped, 0);
            assert_eq!(c.retries, 0);
            assert_eq!(c.timeouts, 0);
            assert!(!c.failed_over);
        }
    }

    #[test]
    fn ft_retry_recovers_from_20pct_loss() {
        let (_, mut clean) = twin(8, CORPUS);
        let want = ids(&clean
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::RetryOnly))
            .unwrap()
            .results);
        let (_, mut lossy) = twin(8, CORPUS);
        lossy.network_mut().faults_mut().set_drop_probability(0.2);
        let out = lossy
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::RetryOnly))
            .unwrap();
        assert_eq!(want, ids(&out.results), "retries must restore full recall");
        assert!(out.coverage.retries > 0, "20% loss must trigger retries");
        assert_eq!(
            out.coverage.vertices_reached, out.coverage.subcube_vertices,
            "every vertex is live, so all must eventually answer"
        );
    }

    /// Kills the root's highest-dimension child: its SBT subtree is
    /// half the subcube.
    fn kill_big_child(sim: &mut ProtocolSim, query: &KeywordSet) -> u64 {
        let root = sim.query_root(query);
        let top = root
            .zero_positions()
            .next_back()
            .expect("query has free dims");
        let dead = root.flip(top).bits();
        let ep = sim.endpoint_of(dead);
        sim.network_mut().faults_mut().kill(ep);
        dead
    }

    #[test]
    fn ft_redelegation_covers_crashed_subtree() {
        let (_, mut sim) = twin(8, CORPUS);
        let dead = kill_big_child(&mut sim, &set("a"));
        let out = sim
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate))
            .unwrap();
        let c = &out.coverage;
        assert_eq!(c.skipped, vec![dead], "only the crashed vertex is lost");
        assert_eq!(c.vertices_reached, c.subcube_vertices - 1);
        assert!(c.redelegations >= 1);
        assert!(c.timeouts >= 1);
    }

    #[test]
    fn ft_retry_only_loses_the_whole_subtree() {
        let (_, mut sim) = twin(8, CORPUS);
        kill_big_child(&mut sim, &set("a"));
        let out = sim
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::RetryOnly))
            .unwrap();
        let c = &out.coverage;
        assert_eq!(
            c.vertices_skipped,
            c.subcube_vertices / 2,
            "the dead child's subtree is half the subcube"
        );
        assert_eq!(c.vertices_reached + c.vertices_skipped, c.subcube_vertices);
    }

    #[test]
    fn ft_naive_terminates_under_crash_with_exact_accounting() {
        let (_, mut sim) = twin(8, CORPUS);
        kill_big_child(&mut sim, &set("a"));
        let out = sim
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Naive))
            .unwrap();
        let c = &out.coverage;
        assert_eq!(c.retries, 0);
        assert!(c.vertices_reached < c.subcube_vertices);
        assert_eq!(
            c.vertices_reached + c.vertices_skipped,
            c.subcube_vertices,
            "quiescence accounting must cover the whole subcube"
        );
    }

    #[test]
    fn ft_dead_root_promotes_requester() {
        let (_, mut sim) = twin(8, CORPUS);
        let root = sim.query_root(&set("a")).bits();
        let ep = sim.endpoint_of(root);
        sim.network_mut().faults_mut().kill(ep);
        let out = sim
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate))
            .unwrap();
        let c = &out.coverage;
        assert_eq!(c.skipped, vec![root], "only the root itself is lost");
        assert_eq!(
            c.vertices_reached,
            c.subcube_vertices - 1,
            "the requester must take over the dead root's frontier"
        );
    }

    #[test]
    fn ft_failover_recovers_objects_from_dead_vertex() {
        // Object 2 ("a b") is homed at F_h({a,b}); kill that vertex.
        let (_, mut sim) = twin(8, CORPUS);
        let home = sim.query_root(&set("a b")).bits();
        let ep = sim.endpoint_of(home);
        sim.network_mut().faults_mut().kill(ep);
        let redel = sim
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate))
            .unwrap();
        assert!(
            !ids(&redel.results).contains(&oid(2)),
            "without a replica the dead vertex's objects are gone"
        );

        let (_, mut sim2) = twin(8, CORPUS);
        let ep2 = sim2.endpoint_of(home);
        sim2.network_mut().faults_mut().kill(ep2);
        let failover = sim2
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::ReplicatedFailover))
            .unwrap();
        assert!(failover.coverage.failed_over);
        assert!(
            ids(&failover.results).contains(&oid(2)),
            "the secondary cube holds a copy under a different hash"
        );
        let (_, mut clean) = twin(8, CORPUS);
        let full = clean.search_sequential(&set("a"), BIG).unwrap();
        assert_eq!(ids(&full.results), ids(&failover.results));
    }

    #[test]
    fn ft_threshold_stops_early() {
        let (_, mut sim) = twin(8, CORPUS);
        let out = sim
            .search_fault_tolerant(&set("a"), 1, ft(RecoveryStrategy::Redelegate))
            .unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.coverage.vertices_skipped, 0);
    }

    #[test]
    fn ft_deterministic_across_runs() {
        let run = || {
            let (_, mut sim) = twin(8, CORPUS);
            sim.network_mut().faults_mut().set_drop_probability(0.2);
            kill_big_child(&mut sim, &set("a"));
            let out = sim
                .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate))
                .unwrap();
            (ids(&out.results), out.coverage)
        };
        assert_eq!(run(), run());
    }

    // ------------------------------------------------------------------
    // Occupancy-guided pruning
    // ------------------------------------------------------------------

    #[test]
    fn pruned_sequential_matches_unpruned_and_contacts_fewer_nodes() {
        let (_, mut plain) = twin(10, CORPUS);
        let (_, mut pruned) = twin(10, CORPUS);
        pruned.set_pruning(true);
        for query in ["a", "a b", "b", "x", "zzz"] {
            let p = plain.search_sequential(&set(query), BIG).unwrap();
            let q = pruned.search_sequential(&set(query), BIG).unwrap();
            assert_eq!(ids(&p.results), ids(&q.results), "query {query}");
            assert!(
                q.nodes_contacted <= p.nodes_contacted,
                "query {query}: pruning contacted more nodes"
            );
        }
        // On this sparse corpus the one-keyword query must show real
        // savings, not just parity.
        let p = plain.search_sequential(&set("a"), BIG).unwrap();
        let q = pruned.search_sequential(&set("a"), BIG).unwrap();
        assert!(
            q.nodes_contacted < p.nodes_contacted,
            "pruned {} vs unpruned {}",
            q.nodes_contacted,
            p.nodes_contacted
        );
        assert!(q.pruned_subtrees > 0);
        assert_eq!(p.pruned_subtrees, 0, "pruning is opt-in");
    }

    #[test]
    fn pruned_parallel_matches_unpruned_and_contacts_fewer_nodes() {
        let (_, mut plain) = twin(10, CORPUS);
        let (_, mut pruned) = twin(10, CORPUS);
        pruned.set_pruning(true);
        let p = plain.search_parallel(&set("a"), BIG).unwrap();
        let q = pruned.search_parallel(&set("a"), BIG).unwrap();
        assert_eq!(ids(&p.results), ids(&q.results));
        assert!(
            q.nodes_contacted < p.nodes_contacted,
            "pruned {} vs unpruned {}",
            q.nodes_contacted,
            p.nodes_contacted
        );
        assert!(q.pruned_subtrees > 0);
    }

    #[test]
    fn pruned_ft_matches_unpruned_with_exact_accounting() {
        let (_, mut plain) = twin(10, CORPUS);
        let (_, mut pruned) = twin(10, CORPUS);
        let a = plain
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate))
            .unwrap();
        let b = pruned
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate).prune(true))
            .unwrap();
        assert_eq!(ids(&a.results), ids(&b.results));
        let c = &b.coverage;
        assert!(c.pruned_subtrees > 0);
        assert!(c.vertices_reached < a.coverage.vertices_reached);
        assert_eq!(
            c.vertices_reached + c.vertices_skipped + c.vertices_pruned,
            c.subcube_vertices,
            "every subcube vertex is reached, skipped, or pruned"
        );
        assert_eq!(a.coverage.pruned_subtrees, 0, "pruning is opt-in");
    }

    #[test]
    fn pruning_never_contacts_a_dead_empty_subtree() {
        // Kill a root child whose region the summary disproves: the
        // pruned traversal must never query it, so no timeouts fire.
        let (_, mut sim) = twin(10, CORPUS);
        let root = sim.query_root(&set("a"));
        let required = root.bits();
        let (dead_bits, _) = root
            .zero_positions()
            .rev()
            .map(|i| (root.flip(i).bits(), i))
            .find(|&(bits, dim)| sim.summary().can_prune(bits, dim, required))
            .expect("a sparse corpus leaves some root child provably empty");
        let ep = sim.endpoint_of(dead_bits);
        sim.network_mut().faults_mut().kill(ep);
        let out = sim
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate).prune(true))
            .unwrap();
        assert_eq!(
            out.coverage.timeouts, 0,
            "the dead vertex was never contacted"
        );
        assert!(out.coverage.pruned_subtrees > 0);
        let (_, mut clean) = twin(10, CORPUS);
        let want = clean
            .search_fault_tolerant(&set("a"), BIG, ft(RecoveryStrategy::Redelegate))
            .unwrap();
        assert_eq!(ids(&want.results), ids(&out.results), "recall intact");
    }

    #[test]
    fn ft_rejects_bad_config() {
        let (_, mut sim) = twin(6, CORPUS);
        assert_eq!(
            sim.search_fault_tolerant(&set("a"), 0, ft(RecoveryStrategy::Redelegate)),
            Err(Error::ZeroThreshold)
        );
        let zero = FtConfig::new(RecoveryStrategy::RetryOnly)
            .base_timeout(hyperdex_simnet::time::SimDuration::ZERO);
        assert_eq!(
            sim.search_fault_tolerant(&set("a"), 5, zero),
            Err(Error::ZeroTimeout)
        );
        // Naive never waits, so a zero timeout is fine there.
        let naive = FtConfig::new(RecoveryStrategy::Naive)
            .base_timeout(hyperdex_simnet::time::SimDuration::ZERO);
        assert!(sim.search_fault_tolerant(&set("a"), 5, naive).is_ok());
    }
}
