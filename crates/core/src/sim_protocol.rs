//! Message-level execution of the superset-search protocol.
//!
//! The figure sweeps use the *direct* engine in [`crate::search`] (exact
//! node/message counts, no event loop). This module runs the **same
//! protocol as actual messages** over `hyperdex-simnet`: every logical
//! hypercube node is an endpoint, `T_QUERY` / `T_CONT` / `T_STOP` /
//! result deliveries are messages with latency, and the measured
//! quantity the direct engine cannot give — **elapsed virtual time** —
//! falls out of the event clock. §3.5's claim that level-parallel
//! execution cuts time from `2^{r−|One|}` to `r − |One|` message delays
//! is validated here as an actual latency measurement.

use std::collections::VecDeque;

use hyperdex_simnet::latency::LatencyModel;
use hyperdex_simnet::net::{EndpointId, Network};

use hyperdex_dht::ObjectId;
use hyperdex_hypercube::{Sbt, Shape, Vertex};

use crate::error::Error;
use crate::hashing::KeywordHasher;
use crate::index::IndexTable;
use crate::keyword::KeywordSet;
use crate::search::RankedObject;

/// Protocol messages (§3.3's `T_QUERY`, `T_CONT`, `T_STOP`, plus the
/// direct result deliveries to the requester).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KwMsg {
    /// Query forwarded to one tree node.
    TQuery {
        /// The queried keyword set `K`.
        keywords: KeywordSet,
        /// Objects still wanted (`c` in the paper).
        remaining: usize,
        /// Endpoint collecting results (`u`).
        requester: EndpointId,
        /// The dimension via which this node was reached (`d`); `None`
        /// for the initial query to the root.
        via_dim: Option<u8>,
        /// The coordinating root endpoint (`v`).
        root: EndpointId,
    },
    /// Node → root: found `c1` objects, here are my children.
    TCont {
        /// Number of objects this node returned.
        found: usize,
        /// Child contacts `(vertex bits, dimension)`.
        children: Vec<(u64, u8)>,
    },
    /// Node → root: the threshold is satisfied; stop the search.
    TStop,
    /// Node → requester: matching objects.
    Results {
        /// The matches found at one node.
        objects: Vec<RankedObject>,
    },
}

/// Outcome of a message-level search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSearchOutcome {
    /// Results in arrival order at the requester.
    pub results: Vec<RankedObject>,
    /// Distinct hypercube nodes that processed a `T_QUERY`.
    pub nodes_contacted: u64,
    /// Total messages the network carried.
    pub messages: u64,
    /// Virtual time from first send to last delivery.
    pub elapsed: hyperdex_simnet::time::SimDuration,
}

/// Root-side coordinator state for one sequential search.
#[derive(Debug)]
struct Coordinator {
    keywords: KeywordSet,
    remaining: usize,
    requester: EndpointId,
    frontier: VecDeque<(u64, u8)>,
    done: bool,
}

/// A logical hypercube whose nodes exchange real protocol messages.
///
/// # Example
///
/// ```
/// use hyperdex_core::sim_protocol::ProtocolSim;
/// use hyperdex_core::{KeywordSet, ObjectId};
/// use hyperdex_simnet::latency::LatencyModel;
///
/// let mut sim = ProtocolSim::new(6, 0, LatencyModel::constant(1))?;
/// sim.insert(ObjectId::from_raw(1), KeywordSet::parse("a b")?)?;
/// let out = sim.search_sequential(&KeywordSet::parse("a")?, 10)?;
/// assert_eq!(out.results.len(), 1);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ProtocolSim {
    net: Network<KwMsg>,
    shape: Shape,
    hasher: KeywordHasher,
    tables: Vec<IndexTable>,
    /// Endpoint of vertex `bits` is `eps[bits]`.
    eps: Vec<EndpointId>,
    requester: EndpointId,
}

impl ProtocolSim {
    /// Creates a hypercube of dimension `r` (one endpoint per vertex,
    /// plus a requester endpoint).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 16` (the endpoint
    /// table is `2^r` entries; larger cubes belong in the direct
    /// engine).
    pub fn new(r: u8, seed: u64, latency: LatencyModel) -> Result<Self, Error> {
        let hasher = KeywordHasher::new(r, seed)?;
        if r > 16 {
            return Err(Error::Dimension(
                hyperdex_hypercube::DimensionError::InvalidDimension { r },
            ));
        }
        let shape = hasher.shape();
        let mut net = Network::new(latency, seed ^ 0x51AE);
        let n = shape.vertex_count() as usize;
        let eps = net.add_endpoints(n);
        let requester = net.add_endpoint();
        Ok(ProtocolSim {
            net,
            shape,
            hasher,
            tables: vec![IndexTable::new(); n],
            eps,
            requester,
        })
    }

    /// The hypercube shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Indexes an object at `F_h(keywords)` (local table write; the
    /// DOLR routing cost of inserts is covered by `hyperdex-dht`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] for an empty set.
    pub fn insert(&mut self, object: ObjectId, keywords: KeywordSet) -> Result<(), Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        let vertex = self.hasher.vertex_for(&keywords);
        self.tables[vertex.bits() as usize].insert(keywords, object);
        Ok(())
    }

    /// Runs the paper's sequential top-down protocol as messages.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`.
    pub fn search_sequential(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
    ) -> Result<SimSearchOutcome, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        let root_vertex = self.hasher.vertex_for(keywords);
        let root_ep = self.eps[root_vertex.bits() as usize];
        let start = self.net.now();
        let sent_before = self.net.metrics().messages_sent.get();

        self.net.send(
            self.requester,
            root_ep,
            KwMsg::TQuery {
                keywords: keywords.clone(),
                remaining: threshold,
                requester: self.requester,
                via_dim: None,
                root: root_ep,
            },
        );

        let mut coordinator: Option<Coordinator> = None;
        let mut results = Vec::new();
        let mut contacted = 0u64;
        let mut last_at = start;

        while let Some(d) = self.net.step() {
            last_at = d.at;
            let to = d.to;
            match d.payload {
                KwMsg::TQuery {
                    keywords,
                    remaining,
                    requester,
                    via_dim,
                    root,
                } => {
                    contacted += 1;
                    let vertex = self.vertex_of(to);
                    let found = self.scan_and_reply(vertex, &keywords, remaining, requester);
                    if to == root {
                        // The root doubles as coordinator.
                        let mut coord = Coordinator {
                            remaining: remaining.saturating_sub(found),
                            keywords,
                            requester,
                            frontier: root_frontier(vertex),
                            done: false,
                        };
                        self.advance(&mut coord, root);
                        coordinator = Some(coord);
                    } else {
                        // Ordinary node: report back to the root.
                        let dim = via_dim.expect("non-root nodes are reached via a dimension");
                        if found >= remaining {
                            self.net.send(to, root, KwMsg::TStop);
                        } else {
                            let children = child_contacts(vertex, dim);
                            self.net.send(to, root, KwMsg::TCont { found, children });
                        }
                    }
                }
                KwMsg::TCont { found, children } => {
                    let coord = coordinator.as_mut().expect("TCont implies a coordinator");
                    coord.remaining = coord.remaining.saturating_sub(found);
                    coord.frontier.extend(children);
                    self.advance_boxed(&mut coordinator, to);
                }
                KwMsg::TStop => {
                    if let Some(coord) = coordinator.as_mut() {
                        coord.done = true;
                    }
                }
                KwMsg::Results { objects } => {
                    debug_assert_eq!(to, self.requester);
                    results.extend(objects);
                }
            }
        }

        results.truncate(threshold);
        Ok(SimSearchOutcome {
            results,
            nodes_contacted: contacted,
            messages: self.net.metrics().messages_sent.get() - sent_before,
            elapsed: last_at.saturating_since(start),
        })
    }

    /// Runs the §3.5 level-parallel variant as messages: the root
    /// queries whole SBT levels in rounds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`.
    pub fn search_parallel(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
    ) -> Result<SimSearchOutcome, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        let root_vertex = self.hasher.vertex_for(keywords);
        let root_ep = self.eps[root_vertex.bits() as usize];
        let sbt = Sbt::induced(root_vertex);
        let start = self.net.now();
        let sent_before = self.net.metrics().messages_sent.get();

        let mut results = Vec::new();
        let mut contacted = 0u64;
        let mut last_at = start;
        let mut satisfied = 0usize;

        'levels: for depth in 0..=sbt.height() {
            // The root addresses every level-d node directly (any node
            // is reachable through the underlying DHT).
            let level: Vec<Vertex> = sbt.level(depth).collect();
            for w in &level {
                let from = if depth == 0 { self.requester } else { root_ep };
                self.net.send(
                    from,
                    self.eps[w.bits() as usize],
                    KwMsg::TQuery {
                        keywords: keywords.clone(),
                        remaining: threshold - satisfied.min(threshold),
                        requester: self.requester,
                        via_dim: None,
                        root: root_ep,
                    },
                );
            }
            // Synchronize the round: deliver everything in flight.
            while let Some(d) = self.net.step() {
                last_at = d.at;
                match d.payload {
                    KwMsg::TQuery {
                        keywords, remaining, requester, ..
                    } => {
                        contacted += 1;
                        let vertex = self.vertex_of(d.to);
                        self.scan_and_reply(vertex, &keywords, remaining, requester);
                    }
                    KwMsg::Results { objects } => {
                        satisfied += objects.len();
                        results.extend(objects);
                    }
                    KwMsg::TCont { .. } | KwMsg::TStop => {}
                }
            }
            if satisfied >= threshold {
                break 'levels;
            }
        }

        results.truncate(threshold);
        Ok(SimSearchOutcome {
            results,
            nodes_contacted: contacted,
            messages: self.net.metrics().messages_sent.get() - sent_before,
            elapsed: last_at.saturating_since(start),
        })
    }

    /// Scans a vertex's table, sends matches to the requester, and
    /// returns how many were sent.
    fn scan_and_reply(
        &mut self,
        vertex: Vertex,
        keywords: &KeywordSet,
        remaining: usize,
        requester: EndpointId,
    ) -> usize {
        let table = &self.tables[vertex.bits() as usize];
        let mut found = Vec::new();
        for (keyword_set, objects) in table.superset_entries(keywords) {
            let extra = (keyword_set.len() - keywords.len()) as u32;
            for object in objects {
                if found.len() >= remaining {
                    break;
                }
                found.push(RankedObject {
                    object,
                    keyword_set: keyword_set.clone(),
                    extra_keywords: extra,
                });
            }
        }
        let count = found.len();
        if count > 0 {
            let from = self.eps[vertex.bits() as usize];
            self.net.send(from, requester, KwMsg::Results { objects: found });
        }
        count
    }

    /// Pops the coordinator's next frontier node and queries it, or
    /// marks the search done.
    fn advance(&mut self, coord: &mut Coordinator, root_ep: EndpointId) {
        if coord.done || coord.remaining == 0 {
            coord.done = true;
            return;
        }
        match coord.frontier.pop_front() {
            None => coord.done = true,
            Some((bits, dim)) => {
                self.net.send(
                    root_ep,
                    self.eps[bits as usize],
                    KwMsg::TQuery {
                        keywords: coord.keywords.clone(),
                        remaining: coord.remaining,
                        requester: coord.requester,
                        via_dim: Some(dim),
                        root: root_ep,
                    },
                );
            }
        }
    }

    /// `advance` through the `Option` wrapper (borrow-checker helper).
    fn advance_boxed(&mut self, coordinator: &mut Option<Coordinator>, root_ep: EndpointId) {
        if let Some(mut coord) = coordinator.take() {
            self.advance(&mut coord, root_ep);
            *coordinator = Some(coord);
        }
    }

    fn vertex_of(&self, ep: EndpointId) -> Vertex {
        Vertex::from_bits(self.shape, ep.raw()).expect("vertex endpoints precede the requester")
    }

    /// Read access to the underlying network (metrics, faults).
    pub fn network(&self) -> &Network<KwMsg> {
        &self.net
    }
}

/// The root's initial frontier: its free dimensions, descending.
fn root_frontier(root: Vertex) -> VecDeque<(u64, u8)> {
    root.zero_positions()
        .rev()
        .map(|i| (root.flip(i).bits(), i))
        .collect()
}

/// A node's child contacts: free dims below its arrival dimension.
fn child_contacts(w: Vertex, via_dim: u8) -> Vec<(u64, u8)> {
    (0..via_dim)
        .rev()
        .filter(|&i| !w.bit(i))
        .map(|i| (w.flip(i).bits(), i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::HypercubeIndex;
    use crate::search::SupersetQuery;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    /// Builds both the direct index and the protocol sim with identical
    /// content.
    fn twin(r: u8, objects: &[(u64, &str)]) -> (HypercubeIndex, ProtocolSim) {
        let mut direct = HypercubeIndex::new(r, 0).unwrap();
        let mut sim = ProtocolSim::new(r, 0, LatencyModel::constant(1)).unwrap();
        for &(id, kws) in objects {
            direct.insert(oid(id), set(kws)).unwrap();
            sim.insert(oid(id), set(kws)).unwrap();
        }
        (direct, sim)
    }

    const CORPUS: &[(u64, &str)] = &[
        (1, "a"),
        (2, "a b"),
        (3, "a b c"),
        (4, "a c"),
        (5, "b c"),
        (6, "a d e"),
        (7, "x y"),
        (8, "a b d"),
    ];

    #[test]
    fn sequential_matches_direct_engine() {
        let (mut direct, mut sim) = twin(8, CORPUS);
        for query in ["a", "a b", "b", "x", "zzz"] {
            let d = direct
                .superset_search(&SupersetQuery::new(set(query)).use_cache(false))
                .unwrap();
            let s = sim.search_sequential(&set(query), usize::MAX - 1).unwrap();
            let mut d_ids: Vec<ObjectId> = d.results.iter().map(|r| r.object).collect();
            let mut s_ids: Vec<ObjectId> = s.results.iter().map(|r| r.object).collect();
            d_ids.sort_unstable();
            s_ids.sort_unstable();
            assert_eq!(d_ids, s_ids, "query {query}");
            assert_eq!(
                d.stats.nodes_contacted, s.nodes_contacted,
                "node parity for {query}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let (_, mut sim) = twin(8, CORPUS);
        let seq = sim.search_sequential(&set("a"), 100).unwrap();
        let par = sim.search_parallel(&set("a"), 100).unwrap();
        let mut a: Vec<ObjectId> = seq.results.iter().map(|r| r.object).collect();
        let mut b: Vec<ObjectId> = par.results.iter().map(|r| r.object).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_is_faster_sequential_cheaper_in_messages() {
        // A query whose subcube is big enough to show the asymmetry.
        let (_, mut sim) = twin(10, CORPUS);
        let seq = sim.search_sequential(&set("a"), usize::MAX - 1).unwrap();
        let par = sim.search_parallel(&set("a"), usize::MAX - 1).unwrap();
        assert!(
            par.elapsed < seq.elapsed,
            "parallel {} vs sequential {} ticks",
            par.elapsed,
            seq.elapsed
        );
        // §3.5: sequential time ≈ 2 messages per node (query + ack);
        // parallel time ≈ tree height × one latency per level + replies.
        assert!(
            seq.elapsed.ticks() >= seq.nodes_contacted,
            "sequential latency grows with every contacted node"
        );
    }

    #[test]
    fn threshold_stops_early_with_tstop() {
        let (_, mut sim) = twin(8, CORPUS);
        let full = sim.search_sequential(&set("a"), 100).unwrap();
        let early = sim.search_sequential(&set("a"), 1).unwrap();
        assert_eq!(early.results.len(), 1);
        assert!(
            early.nodes_contacted < full.nodes_contacted,
            "T_STOP must cut the traversal: {} vs {}",
            early.nodes_contacted,
            full.nodes_contacted
        );
    }

    #[test]
    fn elapsed_time_accounts_latency() {
        let mut slow = ProtocolSim::new(6, 0, LatencyModel::constant(10)).unwrap();
        slow.insert(oid(1), set("k")).unwrap();
        let out = slow.search_sequential(&set("k"), 10).unwrap();
        assert!(out.elapsed.ticks() >= 10, "at least one 10-tick hop");
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn zero_threshold_rejected() {
        let (_, mut sim) = twin(6, CORPUS);
        assert!(sim.search_sequential(&set("a"), 0).is_err());
        assert!(sim.search_parallel(&set("a"), 0).is_err());
    }

    #[test]
    fn empty_query_browses_whole_cube() {
        let (_, mut sim) = twin(6, &[(1, "p"), (2, "q")]);
        let out = sim.search_sequential(&KeywordSet::new(), 100).unwrap();
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.nodes_contacted, 64, "empty query spans the full cube");
    }

    #[test]
    fn rejects_oversized_dimension() {
        assert!(ProtocolSim::new(17, 0, LatencyModel::default()).is_err());
    }
}
