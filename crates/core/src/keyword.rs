//! Keyword and keyword-set value types.
//!
//! §2.2: every object `σ` carries a set `K_σ` of keywords; a set `K`
//! *describes* `σ` when `K ⊆ K_σ`. Keywords here are normalized
//! (trimmed, lowercased) so that `"MP3"` and `"mp3"` hash to the same
//! bit position.

use std::collections::btree_set;
use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::Error;

/// A single normalized keyword: non-empty, trimmed, lowercase.
///
/// # Example
///
/// ```
/// use hyperdex_core::Keyword;
///
/// let k = Keyword::new("  MP3 ")?;
/// assert_eq!(k.as_str(), "mp3");
/// assert!(Keyword::new("   ").is_err());
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Keyword(String);

impl Keyword {
    /// Normalizes and validates a keyword.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeyword`] when the input is empty or
    /// whitespace-only.
    pub fn new(raw: &str) -> Result<Self, Error> {
        let normalized = raw.trim().to_lowercase();
        if normalized.is_empty() {
            Err(Error::EmptyKeyword)
        } else {
            Ok(Keyword(normalized))
        }
    }

    /// The normalized text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The normalized text as bytes (hash input).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// The keyword's bit in the 64-bit [`KeywordSet::signature`]: a
    /// single set bit chosen by FNV-1a over the normalized text.
    ///
    /// Unlike the `r`-bit vertex position (which depends on the cube
    /// dimension and hash seed), the signature bit is a pure function
    /// of the keyword itself, so signatures computed by any node — at
    /// any `r`, under any seed — agree.
    pub fn signature_bit(&self) -> u64 {
        1 << (fnv1a64(self.as_bytes()) % 64)
    }
}

/// FNV-1a over `bytes` (64-bit offset basis / prime). Local so the
/// signature needs no hasher state and no external dependency.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Keyword {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for Keyword {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        Keyword::new(s)
    }
}

/// A set of keywords — `K_σ` for an object, or a query set `K`.
///
/// Internally a sorted set, so equality, subset tests, and iteration
/// order are canonical.
///
/// # Example
///
/// ```
/// use hyperdex_core::KeywordSet;
///
/// let k_obj = KeywordSet::parse("ISP, telecommunication, network, download")?;
/// let query = KeywordSet::parse("network, isp")?;
/// assert!(query.describes(&k_obj));       // query ⊆ K_σ
/// assert_eq!(k_obj.len(), 4);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct KeywordSet(BTreeSet<Keyword>);

impl KeywordSet {
    /// The empty keyword set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a comma- or whitespace-separated list of keywords.
    ///
    /// Duplicates collapse. An empty input yields an empty set.
    ///
    /// # Errors
    ///
    /// Never fails on separator-only input (empty tokens are skipped);
    /// present for future validation and API stability.
    pub fn parse(raw: &str) -> Result<Self, Error> {
        let mut set = BTreeSet::new();
        for token in raw.split(|c: char| c == ',' || c.is_whitespace()) {
            if !token.trim().is_empty() {
                set.insert(Keyword::new(token)?);
            }
        }
        Ok(KeywordSet(set))
    }

    /// Builds a set from anything iterable as string slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeyword`] if any item normalizes to empty.
    pub fn from_strs<I, S>(items: I) -> Result<Self, Error>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut set = BTreeSet::new();
        for item in items {
            set.insert(Keyword::new(item.as_ref())?);
        }
        Ok(KeywordSet(set))
    }

    /// Adds a keyword. Returns `false` if it was already present.
    pub fn insert(&mut self, keyword: Keyword) -> bool {
        self.0.insert(keyword)
    }

    /// Removes a keyword. Returns `false` if it was absent.
    pub fn remove(&mut self, keyword: &Keyword) -> bool {
        self.0.remove(keyword)
    }

    /// Whether the set contains `keyword`.
    pub fn contains(&self, keyword: &Keyword) -> bool {
        self.0.contains(keyword)
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `self` *describes* an object with keyword set `k_obj`
    /// (`self ⊆ k_obj`, §2.2).
    pub fn describes(&self, k_obj: &KeywordSet) -> bool {
        self.0.is_subset(&k_obj.0)
    }

    /// Whether `self` is a superset of `other`.
    pub fn is_superset(&self, other: &KeywordSet) -> bool {
        self.0.is_superset(&other.0)
    }

    /// The keywords in `self` but not in `other` — the "extra" keywords
    /// the ranking mechanism groups by.
    pub fn difference(&self, other: &KeywordSet) -> KeywordSet {
        KeywordSet(self.0.difference(&other.0).cloned().collect())
    }

    /// The union of two sets.
    pub fn union(&self, other: &KeywordSet) -> KeywordSet {
        KeywordSet(self.0.union(&other.0).cloned().collect())
    }

    /// Iterates over keywords in sorted order.
    pub fn iter(&self) -> Iter<'_> {
        Iter(self.0.iter())
    }

    /// A 64-bit Bloom-style signature: the OR of every member's
    /// [`Keyword::signature_bit`].
    ///
    /// Subset-preserving: `K ⊆ K'` implies
    /// `K.signature() & K'.signature() == K.signature()`, so a failed
    /// mask test proves `K ⊄ K'` and a superset scan may skip the
    /// string comparison. Distinct keywords can collide on a bit
    /// (64 positions), so a *passing* test over-matches and must be
    /// confirmed by [`KeywordSet::is_superset`]. The empty set's
    /// signature is `0`.
    pub fn signature(&self) -> u64 {
        self.0.iter().fold(0, |sig, k| sig | k.signature_bit())
    }
}

/// Iterator over the keywords of a [`KeywordSet`] in sorted order.
#[derive(Debug, Clone)]
pub struct Iter<'a>(btree_set::Iter<'a, Keyword>);

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Keyword;

    fn next(&mut self) -> Option<&'a Keyword> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

impl<'a> IntoIterator for &'a KeywordSet {
    type Item = &'a Keyword;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl IntoIterator for KeywordSet {
    type Item = Keyword;
    type IntoIter = btree_set::IntoIter<Keyword>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl FromIterator<Keyword> for KeywordSet {
    fn from_iter<I: IntoIterator<Item = Keyword>>(iter: I) -> Self {
        KeywordSet(iter.into_iter().collect())
    }
}

impl Extend<Keyword> for KeywordSet {
    fn extend<I: IntoIterator<Item = Keyword>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl fmt::Display for KeywordSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, k) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_normalizes() {
        assert_eq!(Keyword::new(" TVBS ").unwrap().as_str(), "tvbs");
        assert_eq!(Keyword::new("News").unwrap().as_str(), "news");
    }

    #[test]
    fn keyword_rejects_empty() {
        assert_eq!(Keyword::new(""), Err(Error::EmptyKeyword));
        assert_eq!(Keyword::new("  \t "), Err(Error::EmptyKeyword));
    }

    #[test]
    fn keyword_from_str_trait() {
        let k: Keyword = "Jazz".parse().unwrap();
        assert_eq!(k.as_str(), "jazz");
    }

    #[test]
    fn parse_table1_record() {
        // Table 1, record 11: "ISP, telecommunication, network, download".
        let set = KeywordSet::parse("ISP, telecommunication, network, download").unwrap();
        assert_eq!(set.len(), 4);
        assert!(set.contains(&Keyword::new("isp").unwrap()));
        assert!(set.contains(&Keyword::new("download").unwrap()));
    }

    #[test]
    fn parse_handles_mixed_separators_and_duplicates() {
        let set = KeywordSet::parse("a b, c,,  a\tb").unwrap();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn parse_empty_gives_empty_set() {
        assert!(KeywordSet::parse("").unwrap().is_empty());
        assert!(KeywordSet::parse(" , ,, ").unwrap().is_empty());
    }

    #[test]
    fn describes_is_subset() {
        let k_obj = KeywordSet::parse("tvbs news").unwrap();
        assert!(KeywordSet::parse("news").unwrap().describes(&k_obj));
        assert!(KeywordSet::parse("tvbs news").unwrap().describes(&k_obj));
        assert!(!KeywordSet::parse("cnn").unwrap().describes(&k_obj));
        assert!(
            KeywordSet::new().describes(&k_obj),
            "empty set describes all"
        );
    }

    #[test]
    fn difference_extracts_extras() {
        let k_obj = KeywordSet::parse("jazz piano 1959").unwrap();
        let query = KeywordSet::parse("jazz").unwrap();
        let extra = k_obj.difference(&query);
        assert_eq!(extra, KeywordSet::parse("piano 1959").unwrap());
    }

    #[test]
    fn union_combines() {
        let a = KeywordSet::parse("a b").unwrap();
        let b = KeywordSet::parse("b c").unwrap();
        assert_eq!(a.union(&b), KeywordSet::parse("a b c").unwrap());
    }

    #[test]
    fn canonical_equality_ignores_order() {
        let a = KeywordSet::parse("x y z").unwrap();
        let b = KeywordSet::parse("z x y").unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.iter().map(Keyword::as_str).collect::<Vec<_>>(),
            vec!["x", "y", "z"],
            "iteration is sorted"
        );
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut set = KeywordSet::new();
        let k = Keyword::new("solo").unwrap();
        assert!(set.insert(k.clone()));
        assert!(!set.insert(k.clone()), "duplicate");
        assert!(set.remove(&k));
        assert!(!set.remove(&k));
        assert!(set.is_empty());
    }

    #[test]
    fn display_formats() {
        let set = KeywordSet::parse("b a").unwrap();
        assert_eq!(set.to_string(), "{a, b}");
        assert_eq!(KeywordSet::new().to_string(), "{}");
    }

    #[test]
    fn from_strs_propagates_error() {
        assert!(KeywordSet::from_strs(["ok", " "]).is_err());
        assert_eq!(KeywordSet::from_strs(["A", "a"]).unwrap().len(), 1);
    }

    #[test]
    fn signature_bit_is_one_hot_and_case_insensitive() {
        let k = Keyword::new("MP3").unwrap();
        assert_eq!(k.signature_bit().count_ones(), 1);
        assert_eq!(
            k.signature_bit(),
            Keyword::new("mp3").unwrap().signature_bit()
        );
        assert_eq!(k.signature_bit(), k.signature_bit(), "deterministic");
    }

    #[test]
    fn signature_is_subset_preserving() {
        let superset = KeywordSet::parse("isp telecommunication network download").unwrap();
        let subset = KeywordSet::parse("network isp").unwrap();
        let (s, q) = (superset.signature(), subset.signature());
        assert_eq!(q & s, q, "subset signature must be covered");
        assert_eq!(KeywordSet::new().signature(), 0);
    }

    #[test]
    fn signature_rejects_disjoint_sets_somewhere() {
        // With 200 distinct keywords over 64 bits, singleton queries
        // must find at least one set whose signature rejects them.
        let sets: Vec<KeywordSet> = (0..200)
            .map(|i| KeywordSet::from_strs([format!("kw{i}")]).unwrap())
            .collect();
        let q = sets[0].signature();
        assert!(
            sets.iter().skip(1).any(|s| q & s.signature() != q),
            "signature never rejected anything"
        );
    }
}
