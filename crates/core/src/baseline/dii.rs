//! The distributed inverted index baseline.
//!
//! Each keyword hashes to one of the `2^r` nodes, which stores the
//! posting list of every object containing that keyword. A `k`-keyword
//! query fetches `k` posting lists and intersects them; a `k`-keyword
//! object insert/delete touches `k` nodes. This is the §1 strawman whose
//! problems (Zipf-skewed load, hot spots, per-keyword single points of
//! failure, `k`-fold storage and update cost) motivate the hypercube
//! scheme.

use std::collections::{BTreeSet, HashMap};

use hyperdex_dht::keyhash::stable_hash64_seeded;
use hyperdex_dht::ObjectId;

use crate::error::Error;
use crate::keyword::{Keyword, KeywordSet};
use crate::search::SearchStats;

/// Seed-space tag separating DII placement from other hash families.
const DII_SEED_TAG: u64 = 0x4449_4931; // "DII1"

/// Outcome of a DII conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiiQueryOutcome {
    /// Objects containing *all* queried keywords.
    pub results: Vec<ObjectId>,
    /// Cost accounting. `result_messages` counts posting-list transfers;
    /// `entries_scanned` counts posting entries shipped — the bandwidth
    /// the hypercube scheme avoids.
    pub stats: SearchStats,
}

/// A distributed inverted index over `2^r` logical nodes.
///
/// # Example
///
/// ```
/// use hyperdex_core::baseline::DistributedInvertedIndex;
/// use hyperdex_core::{KeywordSet, ObjectId};
///
/// let mut dii = DistributedInvertedIndex::new(10, 0)?;
/// dii.insert(ObjectId::from_raw(1), &KeywordSet::parse("jazz piano")?);
/// let out = dii.query(&KeywordSet::parse("jazz")?);
/// assert_eq!(out.results, vec![ObjectId::from_raw(1)]);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistributedInvertedIndex {
    r: u8,
    seed: u64,
    /// node → keyword → posting list.
    postings: HashMap<u64, HashMap<Keyword, BTreeSet<ObjectId>>>,
    object_count: usize,
}

impl DistributedInvertedIndex {
    /// Creates an index over `2^r` logical nodes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn new(r: u8, seed: u64) -> Result<Self, Error> {
        // Reuse the shape validation for consistent limits.
        hyperdex_hypercube::Shape::new(r)?;
        Ok(DistributedInvertedIndex {
            r,
            seed,
            postings: HashMap::new(),
            object_count: 0,
        })
    }

    /// The node a keyword hashes to.
    pub fn node_for(&self, keyword: &Keyword) -> u64 {
        stable_hash64_seeded(keyword.as_bytes(), self.seed ^ DII_SEED_TAG) % (1u64 << self.r)
    }

    /// Indexes `object` under every keyword in `keywords`, touching one
    /// node per keyword. Returns how many nodes were updated — the
    /// `k`-lookup insert cost the paper contrasts with its single
    /// lookup.
    pub fn insert(&mut self, object: ObjectId, keywords: &KeywordSet) -> usize {
        let mut touched = 0;
        for k in keywords {
            let node = self.node_for(k);
            self.postings
                .entry(node)
                .or_default()
                .entry(k.clone())
                .or_default()
                .insert(object);
            touched += 1;
        }
        if touched > 0 {
            self.object_count += 1;
        }
        touched
    }

    /// Removes `object` from every keyword's posting list; returns the
    /// number of nodes touched.
    pub fn remove(&mut self, object: ObjectId, keywords: &KeywordSet) -> usize {
        let mut touched = 0;
        for k in keywords {
            let node = self.node_for(k);
            if let Some(node_postings) = self.postings.get_mut(&node) {
                if let Some(list) = node_postings.get_mut(k) {
                    if list.remove(&object) {
                        touched += 1;
                    }
                    if list.is_empty() {
                        node_postings.remove(k);
                    }
                }
            }
        }
        if touched > 0 {
            self.object_count = self.object_count.saturating_sub(1);
        }
        touched
    }

    /// Conjunctive query: fetch each keyword's posting list (one node
    /// each) and intersect.
    pub fn query(&self, keywords: &KeywordSet) -> DiiQueryOutcome {
        let mut stats = SearchStats::default();
        let mut intersection: Option<BTreeSet<ObjectId>> = None;
        for k in keywords {
            stats.query_messages += 1;
            stats.nodes_contacted += 1;
            let list = self
                .postings
                .get(&self.node_for(k))
                .and_then(|np| np.get(k))
                .cloned()
                .unwrap_or_default();
            stats.entries_scanned += list.len() as u64;
            if !list.is_empty() {
                stats.result_messages += 1;
            }
            intersection = Some(match intersection {
                None => list,
                Some(acc) => acc.intersection(&list).copied().collect(),
            });
            if intersection.as_ref().is_some_and(BTreeSet::is_empty) {
                break; // empty intersection cannot recover
            }
        }
        DiiQueryOutcome {
            results: intersection.unwrap_or_default().into_iter().collect(),
            stats,
        }
    }

    /// Simulates the crash of one node: every posting list it held is
    /// lost. Returns the number of posting entries that disappeared.
    ///
    /// The keywords owned by this node become entirely unsearchable —
    /// the single-point-of-failure §1 charges this scheme with.
    pub fn drop_node(&mut self, node: u64) -> usize {
        match self.postings.remove(&node) {
            None => 0,
            Some(lists) => lists.values().map(BTreeSet::len).sum(),
        }
    }

    /// Storage load per node (posting entries) — the `DII-r` series of
    /// Figure 6. Only nodes with at least one entry appear.
    pub fn node_loads(&self) -> Vec<(u64, usize)> {
        self.postings
            .iter()
            .map(|(node, lists)| (*node, lists.values().map(BTreeSet::len).sum()))
            .filter(|&(_, load)| load > 0)
            .collect()
    }

    /// Total posting entries across all nodes — the redundant storage
    /// the paper charges this scheme for (≈ `k×` the object count).
    pub fn total_postings(&self) -> usize {
        self.node_loads().iter().map(|&(_, l)| l).sum()
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.object_count
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.object_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn insert_touches_k_nodes_worth() {
        let mut dii = DistributedInvertedIndex::new(10, 0).unwrap();
        let touched = dii.insert(oid(1), &set("a b c d"));
        assert_eq!(touched, 4, "one update per keyword");
        assert_eq!(dii.total_postings(), 4, "4x storage for one object");
        assert_eq!(dii.len(), 1);
    }

    #[test]
    fn conjunctive_query_intersects() {
        let mut dii = DistributedInvertedIndex::new(10, 0).unwrap();
        dii.insert(oid(1), &set("jazz piano"));
        dii.insert(oid(2), &set("jazz sax"));
        dii.insert(oid(3), &set("rock piano"));
        assert_eq!(dii.query(&set("jazz piano")).results, vec![oid(1)]);
        assert_eq!(dii.query(&set("jazz")).results, vec![oid(1), oid(2)]);
        assert!(dii.query(&set("jazz rock")).results.is_empty());
    }

    #[test]
    fn query_costs_one_node_per_keyword() {
        let mut dii = DistributedInvertedIndex::new(10, 0).unwrap();
        dii.insert(oid(1), &set("a b c"));
        let out = dii.query(&set("a b c"));
        assert_eq!(out.stats.nodes_contacted, 3);
        assert_eq!(out.stats.query_messages, 3);
    }

    #[test]
    fn empty_intersection_short_circuits() {
        let mut dii = DistributedInvertedIndex::new(10, 0).unwrap();
        dii.insert(oid(1), &set("a"));
        // "zzz" has an empty posting list; later keywords are skipped.
        let out = dii.query(&set("zzz a b c d e"));
        assert!(out.results.is_empty());
        assert!(out.stats.nodes_contacted < 6);
    }

    #[test]
    fn remove_cleans_postings() {
        let mut dii = DistributedInvertedIndex::new(10, 0).unwrap();
        dii.insert(oid(1), &set("x y"));
        assert_eq!(dii.remove(oid(1), &set("x y")), 2);
        assert_eq!(dii.remove(oid(1), &set("x y")), 0);
        assert!(dii.is_empty());
        assert_eq!(dii.total_postings(), 0);
    }

    #[test]
    fn popular_keyword_concentrates_load() {
        // 100 objects all share "mp3": one node's load grows linearly —
        // the hot-spot pathology.
        let mut dii = DistributedInvertedIndex::new(10, 0).unwrap();
        for i in 0..100 {
            dii.insert(oid(i), &set(&format!("mp3 unique{i}")));
        }
        let loads = dii.node_loads();
        let max_load = loads.iter().map(|&(_, l)| l).max().unwrap();
        assert!(max_load >= 100, "hot node holds every mp3 posting");
    }

    #[test]
    fn query_empty_keyword_set_returns_nothing() {
        let dii = DistributedInvertedIndex::new(8, 0).unwrap();
        let out = dii.query(&KeywordSet::new());
        assert!(out.results.is_empty());
        assert_eq!(out.stats.nodes_contacted, 0);
    }
}
