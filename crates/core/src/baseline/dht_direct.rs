//! Direct DHT hashing — the `DHT-r` load-balance reference of Figure 6.
//!
//! "A typical DHT network hashes objects (by their names) to determine
//! their handling nodes, as well as to balance load. So the reference
//! lines provide a guideline to see if our index scheme can achieve the
//! load balance of regular DHT networks." This is *not* a keyword index;
//! it only answers how evenly `|O|` objects spread over `2^r` nodes
//! under a uniform hash.

use std::collections::HashMap;

use hyperdex_dht::keyhash::stable_hash_u64;
use hyperdex_dht::ObjectId;

use crate::error::Error;

/// Seed-space tag separating direct placement from other hash families.
const DIRECT_SEED_TAG: u64 = 0x4448_5452; // "DHTR"

/// Uniform object→node placement over `2^r` logical nodes.
///
/// # Example
///
/// ```
/// use hyperdex_core::baseline::DirectHashPlacement;
/// use hyperdex_core::ObjectId;
///
/// let mut dht = DirectHashPlacement::new(10, 0)?;
/// dht.insert(ObjectId::from_raw(7));
/// assert_eq!(dht.len(), 1);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DirectHashPlacement {
    r: u8,
    seed: u64,
    loads: HashMap<u64, usize>,
    object_count: usize,
}

impl DirectHashPlacement {
    /// Creates a placement over `2^r` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn new(r: u8, seed: u64) -> Result<Self, Error> {
        hyperdex_hypercube::Shape::new(r)?;
        Ok(DirectHashPlacement {
            r,
            seed,
            loads: HashMap::new(),
            object_count: 0,
        })
    }

    /// The node `object` hashes to.
    pub fn node_for(&self, object: ObjectId) -> u64 {
        stable_hash_u64(object.raw(), self.seed ^ DIRECT_SEED_TAG) % (1u64 << self.r)
    }

    /// Places one object; returns its node.
    pub fn insert(&mut self, object: ObjectId) -> u64 {
        let node = self.node_for(object);
        *self.loads.entry(node).or_insert(0) += 1;
        self.object_count += 1;
        node
    }

    /// Storage load per non-empty node — the `DHT-r` series.
    pub fn node_loads(&self) -> Vec<(u64, usize)> {
        self.loads
            .iter()
            .map(|(&node, &load)| (node, load))
            .collect()
    }

    /// Number of placed objects.
    pub fn len(&self) -> usize {
        self.object_count
    }

    /// Whether nothing has been placed.
    pub fn is_empty(&self) -> bool {
        self.object_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let d = DirectHashPlacement::new(10, 1).unwrap();
        let obj = ObjectId::from_raw(99);
        assert_eq!(d.node_for(obj), d.node_for(obj));
    }

    #[test]
    fn loads_sum_to_object_count() {
        let mut d = DirectHashPlacement::new(8, 0).unwrap();
        for i in 0..500 {
            d.insert(ObjectId::from_raw(i));
        }
        let total: usize = d.node_loads().iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 500);
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let mut d = DirectHashPlacement::new(6, 0).unwrap(); // 64 nodes
        for i in 0..6400 {
            d.insert(ObjectId::from_raw(i));
        }
        // Mean 100/node: every node should be populated and no node
        // should exceed ~2x the mean under a uniform hash.
        let loads = d.node_loads();
        assert_eq!(loads.len(), 64);
        let max = loads.iter().map(|&(_, l)| l).max().unwrap();
        assert!(max < 200, "max load {max}");
    }

    #[test]
    fn nodes_within_range() {
        let mut d = DirectHashPlacement::new(4, 7).unwrap();
        for i in 0..100 {
            assert!(d.insert(ObjectId::from_raw(i)) < 16);
        }
    }
}
