//! Baseline schemes the paper compares against (Figure 6).
//!
//! * [`dii`] — the **distributed inverted index**: one node per keyword
//!   holds the full posting list of objects containing it (the approach
//!   of Reynolds & Vahdat and of Tapestry-based keyword search). Insert
//!   and delete touch `k` nodes for a `k`-keyword object, and the
//!   storage load is as skewed as the keyword popularity (Zipf), which
//!   Figure 6's `DII-r` curves show.
//! * [`dht_direct`] — **direct DHT hashing** of whole objects to nodes:
//!   not a keyword index at all, but the load-balance reference line
//!   (`DHT-r`) that a hashing scheme can realistically achieve.

pub mod dht_direct;
pub mod dii;

pub use dht_direct::DirectHashPlacement;
pub use dii::DistributedInvertedIndex;
