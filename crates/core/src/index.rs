//! Per-node index tables.
//!
//! §3.3: each hypercube node `u` maintains a table of entries
//! `⟨keyword_set, object_id⟩`; entries with the same keyword set are
//! combined into `⟨K, {σ₁…σₙ}⟩`. A node may be responsible for several
//! distinct keyword sets (hash collisions in `F_h`), so the table is
//! keyed by the full keyword set, not the vertex.
//!
//! Every posting list carries its keyword set's 64-bit
//! [`KeywordSet::signature`], computed once when the set first enters
//! the table. Superset scans test `qsig & sig == qsig` (an O(1) word
//! op) before the `BTreeSet` string comparison, and the table-wide OR
//! of all signatures short-circuits pin lookups and whole-table scans
//! that cannot possibly match. Signatures over-match on bit
//! collisions, so a passing prefilter is always confirmed by
//! [`KeywordSet::is_superset`] — results are byte-identical to the
//! unfiltered scan.

use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};
use std::sync::Arc;

use hyperdex_dht::ObjectId;

use crate::keyword::KeywordSet;

/// A posting list: the objects indexed under one keyword set, plus the
/// set's signature cached at insert time.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Postings {
    /// [`KeywordSet::signature`] of the key, computed once on intern.
    sig: u64,
    /// The objects carrying exactly this keyword set.
    objects: BTreeSet<ObjectId>,
}

/// The index table `Tbl_u` of one hypercube node.
///
/// # Example
///
/// ```
/// use hyperdex_core::{IndexTable, KeywordSet, ObjectId};
///
/// let mut tbl = IndexTable::new();
/// let k = KeywordSet::parse("tvbs, news")?;
/// tbl.insert(k.clone(), ObjectId::from_raw(1));
/// tbl.insert(k.clone(), ObjectId::from_raw(2));
/// assert_eq!(tbl.objects_with(&k).count(), 2);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexTable {
    // Keyword sets are interned behind `Arc` so search results can
    // reference them without deep-cloning string sets — result lists
    // for popular queries reach tens of thousands of entries.
    entries: BTreeMap<Arc<KeywordSet>, Postings>,
    // OR of every entry's signature; kept exact (recomputed when a set
    // leaves the table) so the derived `PartialEq` stays structural.
    union_sig: u64,
}

impl IndexTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the entry `⟨keywords, object⟩`. Returns `false` if it was
    /// already present.
    ///
    /// If an equal keyword set is already interned in the table, the
    /// object joins its posting list without allocating a new `Arc`.
    pub fn insert(&mut self, keywords: KeywordSet, object: ObjectId) -> bool {
        if let Some(postings) = self.entries.get_mut(&keywords) {
            return postings.objects.insert(object);
        }
        self.insert_arc(Arc::new(keywords), object)
    }

    /// [`IndexTable::insert`] for an already-interned keyword set; the
    /// message-level protocol and churn paths share one `Arc` per set
    /// across tables, replicas, and in-flight batches instead of
    /// deep-cloning the strings.
    pub fn insert_arc(&mut self, keywords: Arc<KeywordSet>, object: ObjectId) -> bool {
        match self.entries.entry(keywords) {
            btree_map::Entry::Occupied(e) => e.into_mut().objects.insert(object),
            btree_map::Entry::Vacant(e) => {
                let sig = e.key().signature();
                self.union_sig |= sig;
                e.insert(Postings {
                    sig,
                    objects: BTreeSet::from([object]),
                });
                true
            }
        }
    }

    /// Removes the entry `⟨keywords, object⟩`. Returns `false` if it was
    /// absent.
    pub fn remove(&mut self, keywords: &KeywordSet, object: ObjectId) -> bool {
        match self.entries.get_mut(keywords) {
            None => false,
            Some(postings) => {
                let removed = postings.objects.remove(&object);
                if postings.objects.is_empty() {
                    self.entries.remove(keywords);
                    // Other entries may still cover the departed bits.
                    self.union_sig = self.entries.values().fold(0, |m, p| m | p.sig);
                }
                removed
            }
        }
    }

    /// The objects indexed under exactly `keywords` (pin-search source).
    ///
    /// Short-circuits on the table-wide signature: if the union of all
    /// entry signatures cannot cover the query's, no entry can equal
    /// it and the `BTreeMap` lookup is skipped entirely.
    pub fn objects_with<'a>(&'a self, keywords: &KeywordSet) -> TableObjects<'a> {
        let qsig = keywords.signature();
        let hit = if qsig & self.union_sig == qsig {
            self.entries.get(keywords)
        } else {
            None
        };
        objects_iter(hit)
    }

    /// All entries `⟨K', O⟩` with `K' ⊇ query` — the per-node scan of
    /// the superset-search protocol (§3.3, step 2), with the signature
    /// prefilter on.
    ///
    /// Keyword sets come back as `&Arc<KeywordSet>` so callers building
    /// result lists can reference them at pointer cost.
    pub fn superset_entries<'a>(&'a self, query: &'a KeywordSet) -> SupersetEntries<'a> {
        self.superset_entries_sig(query, query.signature())
    }

    /// [`IndexTable::superset_entries`] with the query signature
    /// precomputed by the caller (traversals compute it once per query,
    /// not once per node).
    ///
    /// Passing `qsig = 0` disables the prefilter — `0 & sig == 0` for
    /// every entry — yielding exactly the pre-optimization unfiltered
    /// `is_superset` scan. [`IndexTable::superset_entries_unfiltered`]
    /// is that spelling.
    pub fn superset_entries_sig<'a>(
        &'a self,
        query: &'a KeywordSet,
        qsig: u64,
    ) -> SupersetEntries<'a> {
        // Whole-table short-circuit: if even the union of all entry
        // signatures misses a query bit, nothing inside can match.
        SupersetEntries {
            inner: self.entries.iter(),
            query: Some(query),
            qsig,
            live: qsig & self.union_sig == qsig,
        }
    }

    /// The baseline scan with no signature prefilter — every entry pays
    /// the full `is_superset` string comparison. Kept as the parity
    /// reference for the mask-prefiltered path (the `throughput`
    /// experiment asserts identical results).
    pub fn superset_entries_unfiltered<'a>(&'a self, query: &'a KeywordSet) -> SupersetEntries<'a> {
        self.superset_entries_sig(query, 0)
    }

    /// OR of every entry's [`KeywordSet::signature`] — the table-wide
    /// digest the short-circuits test against.
    pub fn union_signature(&self) -> u64 {
        self.union_sig
    }

    /// Number of distinct keyword sets in the table.
    pub fn keyword_set_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of indexed objects (the node's storage load — what
    /// Figure 6 ranks).
    pub fn object_count(&self) -> usize {
        self.entries.values().map(|p| p.objects.len()).sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(keyword set, objects)` entries in sorted
    /// keyword-set order.
    pub fn iter(&self) -> SupersetEntries<'_> {
        SupersetEntries {
            inner: self.entries.iter(),
            query: None,
            qsig: 0,
            live: true,
        }
    }
}

/// Posting iterator of one table entry: the `BTreeSet` walk, plus an
/// `Option` layer so a missed lookup yields an empty iterator of the
/// same type. Named (not `impl Iterator`) so the backend-dispatching
/// [`crate::store::PostingStore`] can embed it in an enum.
pub type TableObjects<'a> =
    std::iter::Flatten<std::option::IntoIter<std::iter::Copied<btree_set::Iter<'a, ObjectId>>>>;

/// The posting iterator of an optional entry (empty when `None`).
fn objects_iter(postings: Option<&Postings>) -> TableObjects<'_> {
    postings
        .map(|p| p.objects.iter().copied())
        .into_iter()
        .flatten()
}

/// Iterator over table entries in sorted keyword-set order, optionally
/// restricted to supersets of a query (signature prefilter first,
/// string comparison second) — the named iterator type behind
/// [`IndexTable::superset_entries`] and [`IndexTable::iter`].
#[derive(Debug, Clone)]
pub struct SupersetEntries<'a> {
    inner: btree_map::Iter<'a, Arc<KeywordSet>, Postings>,
    /// `Some` = yield only entries whose set ⊇ query.
    query: Option<&'a KeywordSet>,
    /// Query signature; 0 passes every entry through the prefilter.
    qsig: u64,
    /// Whole-table short-circuit verdict, decided at construction.
    live: bool,
}

impl<'a> Iterator for SupersetEntries<'a> {
    type Item = (&'a Arc<KeywordSet>, TableObjects<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if !self.live {
            return None;
        }
        loop {
            let (k, p) = self.inner.next()?;
            if p.sig & self.qsig != self.qsig {
                continue;
            }
            if let Some(query) = self.query {
                if !k.is_superset(query) {
                    continue;
                }
            }
            return Some((k, objects_iter(Some(p))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn entries_with_same_set_combine() {
        let mut tbl = IndexTable::new();
        assert!(tbl.insert(set("a b"), oid(1)));
        assert!(tbl.insert(set("a b"), oid(2)));
        assert!(!tbl.insert(set("a b"), oid(1)), "duplicate entry");
        assert_eq!(tbl.keyword_set_count(), 1);
        assert_eq!(tbl.object_count(), 2);
    }

    #[test]
    fn remove_cleans_empty_sets() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("a"), oid(1));
        assert!(tbl.remove(&set("a"), oid(1)));
        assert!(!tbl.remove(&set("a"), oid(1)));
        assert!(tbl.is_empty());
        assert_eq!(tbl.keyword_set_count(), 0);
        assert_eq!(tbl.union_signature(), 0, "digest follows removals");
    }

    #[test]
    fn remove_missing_set_is_false() {
        let mut tbl = IndexTable::new();
        assert!(!tbl.remove(&set("nope"), oid(1)));
    }

    #[test]
    fn pin_lookup_is_exact() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("a b"), oid(1));
        tbl.insert(set("a b c"), oid(2));
        let hits: Vec<ObjectId> = tbl.objects_with(&set("a b")).collect();
        assert_eq!(hits, vec![oid(1)], "no superset leakage in pin search");
        assert_eq!(tbl.objects_with(&set("a")).count(), 0);
    }

    #[test]
    fn superset_entries_filter() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("a b"), oid(1));
        tbl.insert(set("a b c"), oid(2));
        tbl.insert(set("x y"), oid(3));
        let query = set("a b");
        let matched: Vec<(&std::sync::Arc<KeywordSet>, Vec<ObjectId>)> = tbl
            .superset_entries(&query)
            .map(|(k, objs)| (k, objs.collect()))
            .collect();
        assert_eq!(matched.len(), 2);
        assert!(matched.iter().all(|(k, _)| k.is_superset(&set("a b"))));
        let empty_query = KeywordSet::new();
        assert_eq!(
            tbl.superset_entries(&empty_query).count(),
            3,
            "empty query matches everything"
        );
    }

    #[test]
    fn masked_scan_matches_unfiltered_scan() {
        let mut tbl = IndexTable::new();
        for i in 0..50 {
            tbl.insert(set(&format!("kw{i} kw{}", i + 1)), oid(i));
        }
        for q in ["kw3", "kw10 kw11", "kw49 kw50", "absent"] {
            let query = set(q);
            let masked: Vec<_> = tbl
                .superset_entries(&query)
                .map(|(k, o)| (Arc::clone(k), o.collect::<Vec<_>>()))
                .collect();
            let plain: Vec<_> = tbl
                .superset_entries_unfiltered(&query)
                .map(|(k, o)| (Arc::clone(k), o.collect::<Vec<_>>()))
                .collect();
            assert_eq!(masked, plain, "prefilter changed results for {q}");
        }
    }

    #[test]
    fn union_signature_short_circuits_but_never_lies() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("jazz piano"), oid(1));
        assert_eq!(
            tbl.union_signature(),
            set("jazz piano").signature(),
            "digest is the OR of entry signatures"
        );
        // A lookup for a set the digest cannot cover returns nothing
        // (and skips the tree walk — observable only as correctness).
        assert_eq!(tbl.objects_with(&set("jazz piano absent")).count(), 0);
        assert_eq!(tbl.objects_with(&set("jazz piano")).count(), 1);
    }

    #[test]
    fn insert_reuses_interned_arc() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("a b"), oid(1));
        let before = tbl.iter().map(|(k, _)| Arc::as_ptr(k)).next().unwrap();
        tbl.insert(set("a b"), oid(2));
        let after = tbl.iter().map(|(k, _)| Arc::as_ptr(k)).next().unwrap();
        assert_eq!(before, after, "second insert minted a new Arc");
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("m"), oid(1));
        tbl.insert(set("n"), oid(2));
        tbl.insert(set("n"), oid(3));
        let total: usize = tbl.iter().map(|(_, objs)| objs.count()).sum();
        assert_eq!(total, 3);
    }
}
