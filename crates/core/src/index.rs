//! Per-node index tables.
//!
//! §3.3: each hypercube node `u` maintains a table of entries
//! `⟨keyword_set, object_id⟩`; entries with the same keyword set are
//! combined into `⟨K, {σ₁…σₙ}⟩`. A node may be responsible for several
//! distinct keyword sets (hash collisions in `F_h`), so the table is
//! keyed by the full keyword set, not the vertex.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hyperdex_dht::ObjectId;

use crate::keyword::KeywordSet;

/// The index table `Tbl_u` of one hypercube node.
///
/// # Example
///
/// ```
/// use hyperdex_core::{IndexTable, KeywordSet, ObjectId};
///
/// let mut tbl = IndexTable::new();
/// let k = KeywordSet::parse("tvbs, news")?;
/// tbl.insert(k.clone(), ObjectId::from_raw(1));
/// tbl.insert(k.clone(), ObjectId::from_raw(2));
/// assert_eq!(tbl.objects_with(&k).count(), 2);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexTable {
    // Keyword sets are interned behind `Arc` so search results can
    // reference them without deep-cloning string sets — result lists
    // for popular queries reach tens of thousands of entries.
    entries: BTreeMap<Arc<KeywordSet>, BTreeSet<ObjectId>>,
}

impl IndexTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the entry `⟨keywords, object⟩`. Returns `false` if it was
    /// already present.
    pub fn insert(&mut self, keywords: KeywordSet, object: ObjectId) -> bool {
        self.insert_arc(Arc::new(keywords), object)
    }

    /// [`IndexTable::insert`] for an already-interned keyword set; the
    /// message-level protocol and churn paths share one `Arc` per set
    /// across tables, replicas, and in-flight batches instead of
    /// deep-cloning the strings.
    pub fn insert_arc(&mut self, keywords: Arc<KeywordSet>, object: ObjectId) -> bool {
        self.entries.entry(keywords).or_default().insert(object)
    }

    /// Removes the entry `⟨keywords, object⟩`. Returns `false` if it was
    /// absent.
    pub fn remove(&mut self, keywords: &KeywordSet, object: ObjectId) -> bool {
        match self.entries.get_mut(keywords) {
            None => false,
            Some(objs) => {
                let removed = objs.remove(&object);
                if objs.is_empty() {
                    self.entries.remove(keywords);
                }
                removed
            }
        }
    }

    /// The objects indexed under exactly `keywords` (pin-search source).
    pub fn objects_with<'a>(
        &'a self,
        keywords: &KeywordSet,
    ) -> impl Iterator<Item = ObjectId> + 'a {
        self.entries
            .get(keywords)
            .into_iter()
            .flat_map(|objs| objs.iter().copied())
    }

    /// All entries `⟨K', O⟩` with `K' ⊇ query` — the per-node scan of
    /// the superset-search protocol (§3.3, step 2).
    ///
    /// Keyword sets come back as `&Arc<KeywordSet>` so callers building
    /// result lists can reference them at pointer cost.
    pub fn superset_entries<'a>(
        &'a self,
        query: &'a KeywordSet,
    ) -> impl Iterator<Item = (&'a Arc<KeywordSet>, impl Iterator<Item = ObjectId> + 'a)> + 'a {
        self.entries
            .iter()
            .filter(move |(k, _)| k.is_superset(query))
            .map(|(k, objs)| (k, objs.iter().copied()))
    }

    /// Number of distinct keyword sets in the table.
    pub fn keyword_set_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of indexed objects (the node's storage load — what
    /// Figure 6 ranks).
    pub fn object_count(&self) -> usize {
        self.entries.values().map(BTreeSet::len).sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(keyword set, objects)` entries in sorted
    /// keyword-set order.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = (&Arc<KeywordSet>, impl Iterator<Item = ObjectId> + '_)> + '_ {
        self.entries
            .iter()
            .map(|(k, objs)| (k, objs.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn entries_with_same_set_combine() {
        let mut tbl = IndexTable::new();
        assert!(tbl.insert(set("a b"), oid(1)));
        assert!(tbl.insert(set("a b"), oid(2)));
        assert!(!tbl.insert(set("a b"), oid(1)), "duplicate entry");
        assert_eq!(tbl.keyword_set_count(), 1);
        assert_eq!(tbl.object_count(), 2);
    }

    #[test]
    fn remove_cleans_empty_sets() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("a"), oid(1));
        assert!(tbl.remove(&set("a"), oid(1)));
        assert!(!tbl.remove(&set("a"), oid(1)));
        assert!(tbl.is_empty());
        assert_eq!(tbl.keyword_set_count(), 0);
    }

    #[test]
    fn remove_missing_set_is_false() {
        let mut tbl = IndexTable::new();
        assert!(!tbl.remove(&set("nope"), oid(1)));
    }

    #[test]
    fn pin_lookup_is_exact() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("a b"), oid(1));
        tbl.insert(set("a b c"), oid(2));
        let hits: Vec<ObjectId> = tbl.objects_with(&set("a b")).collect();
        assert_eq!(hits, vec![oid(1)], "no superset leakage in pin search");
        assert_eq!(tbl.objects_with(&set("a")).count(), 0);
    }

    #[test]
    fn superset_entries_filter() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("a b"), oid(1));
        tbl.insert(set("a b c"), oid(2));
        tbl.insert(set("x y"), oid(3));
        let query = set("a b");
        let matched: Vec<(&std::sync::Arc<KeywordSet>, Vec<ObjectId>)> = tbl
            .superset_entries(&query)
            .map(|(k, objs)| (k, objs.collect()))
            .collect();
        assert_eq!(matched.len(), 2);
        assert!(matched.iter().all(|(k, _)| k.is_superset(&set("a b"))));
        let empty_query = KeywordSet::new();
        assert_eq!(
            tbl.superset_entries(&empty_query).count(),
            3,
            "empty query matches everything"
        );
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut tbl = IndexTable::new();
        tbl.insert(set("m"), oid(1));
        tbl.insert(set("n"), oid(2));
        tbl.insert(set("n"), oid(3));
        let total: usize = tbl.iter().map(|(_, objs)| objs.count()).sum();
        assert_eq!(total, 3);
    }
}
