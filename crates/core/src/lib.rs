//! # hyperdex-core
//!
//! The hypercube keyword index and search scheme of *Keyword Search in
//! DHT-based Peer-to-Peer Networks* (Joung, Fang & Yang, ICDCS 2005) —
//! the paper's primary contribution.
//!
//! ## The scheme in one paragraph
//!
//! Every keyword hashes to a bit position in `{0..r-1}`
//! ([`KeywordHasher`]); an object's keyword set therefore maps to the
//! hypercube vertex whose one-bits are the hashed positions of its
//! keywords (`F_h`, [`KeywordHasher::vertex_for`]). Each object is
//! indexed at exactly **one** vertex. Pin search (exact keyword set) is
//! a single lookup. Superset search explores the subhypercube induced by
//! the query vertex along its spanning binomial tree, returning objects
//! ordered by how many *extra* keywords they have — most-general-first
//! (top-down) or most-specific-first (bottom-up) — with early exit after
//! a threshold. Because popular keywords occur in many distinct keyword
//! sets, index load spreads across many vertices even under Zipf
//! popularity, unlike a distributed inverted index.
//!
//! ## Crate layout
//!
//! * [`keyword`] — [`Keyword`] and [`KeywordSet`] value types.
//! * [`hashing`] — the keyword→bit hash `h` and set→vertex map `F_h`.
//! * [`index`] — per-node index tables of `⟨keyword set, object⟩` with
//!   64-bit signature prefilters on every scan.
//! * [`intern`] — [`KeywordInterner`]: one `Arc` per distinct keyword
//!   set, shared across tables, cubes, and replicas.
//! * [`cache`] — per-node FIFO result caches (§4, third experiment).
//! * [`cluster`] — [`HypercubeIndex`], the logical-hypercube index used
//!   by the paper's measurements (exact nodes-contacted accounting).
//! * [`search`] — pin search, the `T_QUERY` superset-search protocol
//!   (sequential top-down / bottom-up, level-parallel, cumulative).
//! * [`ranking`] — grouping and sampling of results by extra keywords.
//! * [`mapping`] — the vertex→DHT-node map `g`.
//! * [`service`] — [`KeywordSearchService`]: the full §3.3 system over a
//!   Chord-like DHT (publish/withdraw/pin/superset with hop accounting).
//! * [`sim_protocol`] — the message-level protocol over `hyperdex-simnet`
//!   (latency, faults, retries; exact coverage accounting).
//! * [`churn`] — live membership over the message-level protocol:
//!   join/leave/crash plans, key-range index handoff, anti-entropy
//!   replica repair.
//! * [`summary`] — occupancy digests over prefix regions of the cube,
//!   letting every search variant prune provably-empty SBT subtrees
//!   while staying recall-safe (DESIGN.md §10).
//! * [`store`] — pluggable per-vertex posting storage: the `BTreeMap`
//!   tables of [`index`] or the struct-of-arrays slab layout with
//!   delta-encoded postings, switched by `HYPERDEX_STORE`
//!   (DESIGN.md §17).
//! * [`decompose`] — decomposed (multi-hypercube) indexes (§3.4).
//! * [`analysis`] — Equation (1) and dimensioning guidance.
//! * [`baseline`] — distributed inverted index and direct-DHT baselines
//!   (the `DII-r` and `DHT-r` curves of Figure 6).
//!
//! # Example
//!
//! ```
//! use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId};
//!
//! let mut index = HypercubeIndex::new(10, 0)?;
//! let song = ObjectId::from_name("song");
//! index.insert(song, KeywordSet::parse("jazz, piano, 1959")?);
//!
//! // Pin search: the exact keyword set.
//! let hit = index.pin_search(&KeywordSet::parse("jazz, piano, 1959")?);
//! assert_eq!(hit.results, vec![song]);
//!
//! // Superset search: any object described by {jazz}.
//! let out = index.superset_search(
//!     &hyperdex_core::SupersetQuery::new(KeywordSet::parse("jazz")?).threshold(10),
//! )?;
//! assert!(out.results.iter().any(|r| r.object == song));
//! # Ok::<(), hyperdex_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod cache;
pub mod churn;
pub mod cluster;
pub mod decompose;
pub mod error;
pub mod expansion;
pub mod hashing;
pub mod index;
pub mod intern;
pub mod keyword;
pub mod mapping;
pub mod protocol;
pub mod ranking;
pub mod replication;
pub mod search;
pub mod service;
pub mod sim_protocol;
pub mod store;
pub mod summary;

pub use churn::{ChurnStats, StabilizationConfig};
pub use cluster::HypercubeIndex;
pub use error::Error;
pub use hashing::KeywordHasher;
pub use hyperdex_dht::ObjectId;
pub use index::IndexTable;
pub use intern::KeywordInterner;
pub use keyword::{Keyword, KeywordSet};
pub use mapping::VertexMap;
pub use protocol::{
    FtCmd, FtCoordinator, FtCoverage, FtPolicy, RecoveryStrategy, SupersetCoordinator, VertexStore,
};
pub use search::{
    PinOutcome, RankedObject, SearchStats, SupersetOutcome, SupersetQuery, TraversalOrder,
};
pub use service::KeywordSearchService;
pub use sim_protocol::{CoverageReport, FtConfig, ProtocolSim};
pub use store::{PostingStore, SlabStore, StoreBackend, StoreFootprint};
pub use summary::{OccupancySummary, SubtreeDigest};
