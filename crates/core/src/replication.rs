//! Index replication via a secondary hypercube (§3.4).
//!
//! "If one wishes, (index) replication can be done in two ways. One is
//! to deal with it directly in the index layer, for example, by
//! building a **secondary hypercube**." This module is that option: a
//! second [`HypercubeIndex`] whose keyword hash family uses an
//! independent seed, so every object is indexed at two *independently
//! placed* vertices. A failure of any single index node (and, with high
//! probability, any small set of failures) leaves every object
//! reachable through the other cube.
//!
//! Costs double exactly where the paper says they should: insert and
//! delete touch two nodes instead of one; storage doubles; queries pay
//! for the secondary cube only when the primary traversal crossed a
//! failed vertex.

use std::collections::HashSet;
use std::sync::Arc;

use hyperdex_dht::ObjectId;
use hyperdex_hypercube::Vertex;

use crate::cluster::HypercubeIndex;
use crate::error::Error;
use crate::intern::KeywordInterner;
use crate::keyword::KeywordSet;
use crate::search::{PinOutcome, SupersetOutcome, SupersetQuery};

/// Seed offset separating the secondary hash family from the primary.
pub(crate) const SECONDARY_SEED_OFFSET: u64 = 0x5EC0_0DA2_CB0E_71CE;

/// A primary + secondary hypercube index with failover search.
///
/// # Example
///
/// ```
/// use hyperdex_core::replication::ReplicatedIndex;
/// use hyperdex_core::{KeywordSet, ObjectId};
///
/// let mut idx = ReplicatedIndex::new(8, 0)?;
/// let k = KeywordSet::parse("p2p dht")?;
/// idx.insert(ObjectId::from_raw(1), k.clone())?;
/// // Crash the primary index node for this keyword set:
/// idx.fail_primary(idx.primary().vertex_for(&k));
/// // The object is still pin-findable through the secondary cube.
/// assert_eq!(idx.pin_search(&k).results.len(), 1);
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedIndex {
    primary: HypercubeIndex,
    secondary: HypercubeIndex,
    failed_primary: HashSet<u64>,
    failed_secondary: HashSet<u64>,
    // One canonical Arc per distinct keyword set, shared by both cubes.
    interner: KeywordInterner,
}

impl ReplicatedIndex {
    /// Creates a replicated index over two `r`-dimensional hypercubes
    /// with independent hash families derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn new(r: u8, seed: u64) -> Result<Self, Error> {
        Ok(ReplicatedIndex {
            primary: HypercubeIndex::new(r, seed)?,
            secondary: HypercubeIndex::new(r, seed ^ SECONDARY_SEED_OFFSET)?,
            failed_primary: HashSet::new(),
            failed_secondary: HashSet::new(),
            interner: KeywordInterner::new(),
        })
    }

    /// The primary cube (read access).
    pub fn primary(&self) -> &HypercubeIndex {
        &self.primary
    }

    /// The secondary cube (read access).
    pub fn secondary(&self) -> &HypercubeIndex {
        &self.secondary
    }

    /// Number of live object entries in the primary cube.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// Whether the primary cube is empty.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// Indexes an object in both cubes (two node touches — the §3.4
    /// replication cost).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] for an empty keyword set.
    pub fn insert(&mut self, object: ObjectId, keywords: KeywordSet) -> Result<(), Error> {
        // Both cubes index the same interned Arc — one string-set
        // allocation per distinct keyword set across both replicas.
        let keywords = self.interner.intern(keywords);
        self.primary.insert_arc(object, Arc::clone(&keywords))?;
        self.secondary.insert_arc(object, keywords)?;
        Ok(())
    }

    /// Removes an object from both cubes.
    pub fn remove(&mut self, object: ObjectId, keywords: &KeywordSet) -> bool {
        let a = self.primary.remove(object, keywords);
        let b = self.secondary.remove(object, keywords);
        a || b
    }

    /// Crashes a primary index node: its entries are lost there.
    pub fn fail_primary(&mut self, vertex: Vertex) {
        self.primary.drop_node(vertex);
        self.failed_primary.insert(vertex.bits());
    }

    /// Crashes a secondary index node.
    pub fn fail_secondary(&mut self, vertex: Vertex) {
        self.secondary.drop_node(vertex);
        self.failed_secondary.insert(vertex.bits());
    }

    /// Pin search with failover: served by the primary unless its
    /// responsible node has failed, in which case the secondary cube
    /// answers.
    pub fn pin_search(&self, keywords: &KeywordSet) -> PinOutcome {
        let v = self.primary.vertex_for(keywords);
        if self.failed_primary.contains(&v.bits()) {
            let mut out = self.secondary.pin_search(keywords);
            // One extra query message: the failover contact.
            out.stats.query_messages += 1;
            out
        } else {
            self.primary.pin_search(keywords)
        }
    }

    /// Superset search with failover: the primary traversal runs first;
    /// if it crossed any failed vertex (so results may be incomplete),
    /// the secondary cube is searched too and the results merged.
    ///
    /// # Errors
    ///
    /// Returns the underlying search errors.
    pub fn superset_search(&mut self, query: &SupersetQuery) -> Result<SupersetOutcome, Error> {
        let mut out = self.primary.superset_search(query)?;
        if !self.primary_traversal_compromised(&query.keywords) {
            return Ok(out);
        }
        let secondary_out = self.secondary.superset_search(query)?;
        // Merge, dedup by object id, respect the threshold.
        let mut seen: HashSet<ObjectId> = out.results.iter().map(|r| r.object).collect();
        for r in secondary_out.results {
            if seen.insert(r.object) {
                out.results.push(r);
            }
        }
        out.results.truncate(query.threshold);
        out.stats.nodes_contacted += secondary_out.stats.nodes_contacted;
        out.stats.query_messages += secondary_out.stats.query_messages;
        out.stats.control_messages += secondary_out.stats.control_messages;
        out.stats.result_messages += secondary_out.stats.result_messages;
        out.stats.entries_scanned += secondary_out.stats.entries_scanned;
        out.exhausted = out.exhausted && secondary_out.exhausted;
        Ok(out)
    }

    /// Whether any failed primary vertex lies inside the query's
    /// induced subhypercube (making a primary-only answer possibly
    /// incomplete).
    fn primary_traversal_compromised(&self, keywords: &KeywordSet) -> bool {
        let root = self.primary.vertex_for(keywords);
        let shape = self.primary.shape();
        self.failed_primary.iter().any(|&bits| {
            Vertex::from_bits(shape, bits)
                .map(|v| v.contains(root))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    fn replicated_with(objects: &[(u64, &str)]) -> ReplicatedIndex {
        let mut idx = ReplicatedIndex::new(8, 0).unwrap();
        for &(id, kws) in objects {
            idx.insert(oid(id), set(kws)).unwrap();
        }
        idx
    }

    #[test]
    fn placements_are_independent() {
        let idx = ReplicatedIndex::new(10, 0).unwrap();
        // Over many sets, the two cubes disagree on placement almost
        // always (independent hash families).
        let differing = (0..100)
            .filter(|i| {
                let k = set(&format!("word{i} other{i}"));
                idx.primary.vertex_for(&k).bits() != idx.secondary.vertex_for(&k).bits()
            })
            .count();
        assert!(differing > 90, "only {differing}/100 placements differ");
    }

    #[test]
    fn pin_failover_survives_primary_crash() {
        let mut idx = replicated_with(&[(1, "a b"), (2, "c d")]);
        let v = idx.primary.vertex_for(&set("a b"));
        idx.fail_primary(v);
        let out = idx.pin_search(&set("a b"));
        assert_eq!(out.results, vec![oid(1)]);
        // The other object still comes from the primary.
        assert_eq!(idx.pin_search(&set("c d")).results, vec![oid(2)]);
    }

    #[test]
    fn unreplicated_crash_loses_data_for_contrast() {
        let mut plain = HypercubeIndex::new(8, 0).unwrap();
        plain.insert(oid(1), set("a b")).unwrap();
        let v = plain.vertex_for(&set("a b"));
        assert_eq!(plain.drop_node(v), 1);
        assert!(plain.pin_search(&set("a b")).results.is_empty());
    }

    #[test]
    fn superset_failover_restores_completeness() {
        let objects: Vec<(u64, String)> = (0..40).map(|i| (i, format!("shared tag{i}"))).collect();
        let mut idx = ReplicatedIndex::new(8, 0).unwrap();
        for (id, kws) in &objects {
            idx.insert(oid(*id), set(kws)).unwrap();
        }
        // Crash the three heaviest primary vertices in the query cube.
        let victims: Vec<Vertex> = idx
            .primary
            .node_loads()
            .iter()
            .map(|&(v, _)| v)
            .take(3)
            .collect();
        for v in victims {
            idx.fail_primary(v);
        }
        let out = idx
            .superset_search(&SupersetQuery::new(set("shared")).use_cache(false))
            .unwrap();
        assert_eq!(out.results.len(), 40, "failover must restore completeness");
    }

    #[test]
    fn untouched_queries_pay_no_failover_cost() {
        let mut idx = replicated_with(&[(1, "a")]);
        // Fail a vertex OUTSIDE the query's subcube: zero bits vertex
        // can't work (it's in every... actually the all-ones vertex is
        // in the subcube of anything it contains). Pick a vertex that
        // does not contain the query root.
        let root = idx.primary.vertex_for(&set("a"));
        let outside = (0..256u64)
            .map(|b| Vertex::from_bits(idx.primary.shape(), b).unwrap())
            .find(|v| !v.contains(root))
            .expect("exists");
        idx.fail_primary(outside);
        let baseline = idx
            .superset_search(&SupersetQuery::new(set("a")).use_cache(false))
            .unwrap();
        // Single-cube traversal only: nodes contacted equals the
        // subcube size.
        assert_eq!(baseline.stats.nodes_contacted, 1u64 << root.zero_count());
    }

    #[test]
    fn remove_clears_both_cubes() {
        let mut idx = replicated_with(&[(1, "x y")]);
        assert!(idx.remove(oid(1), &set("x y")));
        assert!(idx.pin_search(&set("x y")).results.is_empty());
        assert!(idx.secondary.pin_search(&set("x y")).results.is_empty());
        assert!(!idx.remove(oid(1), &set("x y")));
    }

    #[test]
    fn double_failure_of_both_copies_loses_the_object() {
        // Honest negative: replication factor 2 tolerates one copy's
        // loss, not both.
        let mut idx = replicated_with(&[(1, "q r")]);
        idx.fail_primary(idx.primary.vertex_for(&set("q r")));
        idx.fail_secondary(idx.secondary.vertex_for(&set("q r")));
        assert!(idx.pin_search(&set("q r")).results.is_empty());
    }
}
