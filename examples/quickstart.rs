//! Quickstart: publish objects into a DHT-backed keyword index and
//! search them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hyperdex::core::search::TraversalOrder;
use hyperdex::core::{KeywordSearchService, KeywordSet, ObjectId, SupersetQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node Chord-like DHT carrying a 10-dimensional hypercube
    // keyword index — the r the paper found optimal for PCHome-like
    // metadata.
    let mut svc = KeywordSearchService::builder()
        .nodes(64)
        .dimension(10)
        .seed(7)
        .build()?;

    // Publish a few objects, each indexed at exactly ONE node — the
    // vertex F_h(K) determined by its keyword set.
    let publisher = svc.random_node();
    let catalogue = [
        ("kind-of-blue", "jazz, trumpet, 1959"),
        ("giant-steps", "jazz, sax, 1960"),
        ("blue-train", "jazz, sax, 1957, hard-bop"),
        ("kind-of-bloop", "chiptune, remix"),
    ];
    for (name, keywords) in catalogue {
        let receipt = svc.publish(
            publisher,
            ObjectId::from_name(name),
            KeywordSet::parse(keywords)?,
        )?;
        println!(
            "published {name:<14} -> index vertex {} ({} DHT hops)",
            receipt.index_vertex.expect("first copy"),
            receipt.total_hops()
        );
    }

    // Pin search: the exact keyword set, one lookup.
    let requester = svc.random_node();
    let pin = svc.pin_search(requester, &KeywordSet::parse("jazz, sax, 1960")?);
    println!(
        "\npin search {{jazz, sax, 1960}} -> {:?} ({} nodes contacted)",
        pin.outcome.results, pin.outcome.stats.nodes_contacted
    );
    assert_eq!(
        pin.outcome.results,
        vec![ObjectId::from_name("giant-steps")]
    );

    // Superset search: everything describable by {jazz}, most general
    // first; the traversal covers only the induced subhypercube.
    let out = svc.superset_search(
        requester,
        &SupersetQuery::new(KeywordSet::parse("jazz")?)
            .threshold(10)
            .order(TraversalOrder::TopDown),
    )?;
    println!(
        "\nsuperset search {{jazz}} found {} objects over {} nodes:",
        out.outcome.results.len(),
        out.outcome.stats.nodes_contacted
    );
    for r in &out.outcome.results {
        println!(
            "  {} (+{} extra keywords: {})",
            r.object, r.extra_keywords, r.keyword_set
        );
    }
    assert_eq!(out.outcome.results.len(), 3, "three jazz records");

    // Fetch a reference (the final Read(σ) of the DOLR layer).
    let reference = svc
        .fetch_reference(publisher, ObjectId::from_name("blue-train"))
        .expect("published above");
    println!(
        "\nRead(blue-train): copy at node {} ({} hops)",
        reference.refs[0].owner, reference.hops
    );
    Ok(())
}
