//! Churn resilience: node failures, surrogate routing, and replication.
//!
//! §3.4's fault-tolerance argument: a keyword's index entries spread
//! over many nodes, so no single failure blocks its queries; reference
//! replication in the DHT layer covers the rest. This example runs the
//! message-level simulator, crashes nodes mid-workload, and shows
//! lookups surviving via failover and stabilization.
//!
//! ```text
//! cargo run --example churn_resilience
//! ```

use hyperdex::dht::sim::SimDht;
use hyperdex::dht::{Dolr, NodeId, ObjectId};
use hyperdex::simnet::latency::LatencyModel;

fn main() {
    // --- Part 1: message-level lookups across crashes. -----------------
    let mut sim = SimDht::new(64, LatencyModel::uniform(1, 5), 21);
    let nodes = sim.nodes();
    let key = NodeId::from_raw(u64::MAX / 3);
    let before = sim.lookup(nodes[0], key).expect("healthy lookup");
    println!(
        "healthy lookup: owner {} in {} hops, {} virtual ticks",
        before.owner,
        before.hops,
        before.completed_at.ticks()
    );

    // Crash 8 random-ish nodes (not the requester).
    for victim in nodes.iter().skip(1).step_by(8).take(8) {
        sim.crash(*victim);
    }
    println!("crashed 8/64 nodes");

    // Pre-stabilization: sender-side failure detection routes around
    // dead fingers (may time out if the key's owner itself died).
    match sim.lookup(nodes[0], key) {
        Some(outcome) => println!(
            "pre-stabilization lookup survived via failover: {} hops",
            outcome.hops
        ),
        None => println!("pre-stabilization lookup timed out (owner among the dead)"),
    }

    // Post-stabilization: ring and fingers rebuilt; surrogate routing
    // hands the dead nodes' keys to their successors.
    sim.stabilize();
    let after = sim.lookup(nodes[0], key).expect("stabilized lookup");
    println!(
        "post-stabilization lookup: new owner {} in {} hops",
        after.owner, after.hops
    );

    // --- Part 2: replicated references survive primary crashes. --------
    let mut dht = Dolr::builder().nodes(32).seed(5).replication(2).build();
    let publisher = dht.random_node();
    let objects: Vec<ObjectId> = (0..50).map(ObjectId::from_raw).collect();
    for &obj in &objects {
        dht.insert(publisher, obj, publisher);
    }
    println!(
        "\npublished {} objects with replication factor 2 ({} stored refs)",
        objects.len(),
        dht.total_refs()
    );

    // Crash five primaries in a row; every object stays readable.
    for round in 1..=5 {
        let primary = dht.locate(objects[0]);
        dht.crash(primary);
        let reader = dht.random_node();
        let alive = objects
            .iter()
            .filter(|&&o| dht.read(reader, o).is_some())
            .count();
        println!(
            "after crash {round}: {}/{} objects readable ({} nodes left)",
            alive,
            objects.len(),
            dht.ring().len()
        );
        assert_eq!(alive, objects.len(), "replication must cover the crash");
    }
    println!("\nall objects survived 5 primary crashes — replication + surrogate routing");
}
