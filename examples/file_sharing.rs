//! File sharing: the paper's motivating workload — multimedia metadata
//! search over a P2P overlay, with ranking and query refinement.
//!
//! Builds a synthetic PCHome-style corpus, indexes it, and walks
//! through the user journey §1 describes: a broad query, category
//! sampling to refine it, then a narrower query whose search space is
//! nested inside the first (Lemma 3.3), and cumulative browsing.
//!
//! ```text
//! cargo run --release --example file_sharing
//! ```

use hyperdex::core::expansion::QueryExpander;
use hyperdex::core::search::cumulative::CumulativeSearch;
use hyperdex::core::{ranking, HypercubeIndex, KeywordSet, SupersetQuery};
use hyperdex::workload::{Corpus, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Index a 10k-record corpus with the paper's distributions.
    let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(10_000), 11);
    let mut index = HypercubeIndex::new(10, 0)?;
    for (id, keywords) in corpus.indexable() {
        index.insert(id, keywords.clone())?;
    }
    println!(
        "indexed {} records (mean {:.1} keywords) over H_10",
        index.len(),
        corpus.mean_keywords_per_object()
    );

    // 1. A broad single-keyword query (the most popular word).
    let broad = KeywordSet::parse("kw000000")?;
    let out = index.superset_search(&SupersetQuery::new(broad.clone()).threshold(200))?;
    println!(
        "\nbroad query {broad}: {} matches shown, {} nodes contacted ({}% of 1024)",
        out.results.len(),
        out.stats.nodes_contacted,
        out.stats.nodes_contacted * 100 / 1024
    );

    // 2. Sample refinement categories: "objects with extra keyword σ1,
    //    extra keyword σ2, ..." — no global knowledge needed.
    let samples = ranking::sample_categories(&out.results, &broad, 2);
    println!("refinement suggestions (first 5 categories):");
    for cat in samples.iter().take(5) {
        println!("  +{} ({} objects)", cat.extra, cat.total);
    }

    // 3. Refine via the §3.4 query expander, which ranks the sampled
    //    categories by the user's preference history; Lemma 3.3: the
    //    refined search space nests inside the broad one.
    let mut expander = QueryExpander::new();
    expander.note(&KeywordSet::parse("kw000002")?); // simulated history
    let refined = expander
        .expand(&mut index, &broad, 200, 1)?
        .first()
        .map(|e| e.query.clone())
        .unwrap_or_else(|| broad.clone());
    let refined_out = index.superset_search(&SupersetQuery::new(refined.clone()).threshold(50))?;
    println!(
        "\nrefined query {refined}: {} matches, {} nodes contacted",
        refined_out.results.len(),
        refined_out.stats.nodes_contacted
    );
    let broad_root = index.vertex_for(&broad);
    let refined_root = index.vertex_for(&refined);
    assert!(
        refined_root.contains(broad_root),
        "Lemma 3.3: refined subcube nests inside the broad one"
    );

    // 4. Browse the broad result set cumulatively, Google-style.
    let mut session = CumulativeSearch::new(&index, broad);
    for page in 1..=3 {
        let batch = session.next_batch(&index, 10)?;
        println!(
            "\npage {page}: {} results ({} new nodes contacted)",
            batch.results.len(),
            batch.stats.nodes_contacted
        );
        for r in batch.results.iter().take(3) {
            println!("  {} — {}", r.object, r.keyword_set);
        }
        if session.is_finished() {
            break;
        }
    }
    println!("\ntotal delivered across pages: {}", session.delivered());
    Ok(())
}
