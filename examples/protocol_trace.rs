//! Protocol trace: the T_QUERY / T_CONT / T_STOP exchange as real
//! simulated messages, comparing §3.3's sequential traversal with
//! §3.5's level-parallel broadcast on *latency* (virtual time), not
//! just message counts.
//!
//! ```text
//! cargo run --example protocol_trace
//! ```

use hyperdex::core::sim_protocol::ProtocolSim;
use hyperdex::core::{KeywordSet, ObjectId};
use hyperdex::simnet::latency::LatencyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-dimensional hypercube; every vertex is a simulated endpoint.
    // Wide-area-ish latency: 5-50 ticks per message.
    let mut sim = ProtocolSim::new(10, 7, LatencyModel::uniform(5, 50))?;

    // Index 2,000 objects sharing a common keyword.
    for i in 0..2_000u64 {
        sim.insert(
            ObjectId::from_raw(i),
            KeywordSet::parse(&format!("shared tag{} group{}", i % 400, i % 13))?,
        )?;
    }
    let query = KeywordSet::parse("shared")?;

    println!("query {{shared}} over H_10, uniform(5,50)-tick links\n");
    println!(
        "{:<24} {:>8} {:>9} {:>10} {:>12}",
        "variant", "results", "nodes", "messages", "time (ticks)"
    );

    // Sequential, full recall: one T_QUERY outstanding at a time.
    let seq = sim.search_sequential(&query, usize::MAX - 1)?;
    println!(
        "{:<24} {:>8} {:>9} {:>10} {:>12}",
        "sequential, full",
        seq.results.len(),
        seq.nodes_contacted,
        seq.messages,
        seq.elapsed.ticks()
    );

    // Sequential with a threshold: T_STOP cuts the walk early.
    let early = sim.search_sequential(&query, 25)?;
    println!(
        "{:<24} {:>8} {:>9} {:>10} {:>12}",
        "sequential, t=25",
        early.results.len(),
        early.nodes_contacted,
        early.messages,
        early.elapsed.ticks()
    );

    // Level-parallel, full recall: whole SBT levels per round.
    let par = sim.search_parallel(&query, usize::MAX - 1)?;
    println!(
        "{:<24} {:>8} {:>9} {:>10} {:>12}",
        "level-parallel, full",
        par.results.len(),
        par.nodes_contacted,
        par.messages,
        par.elapsed.ticks()
    );

    println!(
        "\nspeedup (sequential/parallel latency): {:.1}x — §3.5's \
         2^(r-|One|) vs r-|One| rounds, as measured virtual time",
        seq.elapsed.ticks() as f64 / par.elapsed.ticks().max(1) as f64
    );
    assert!(par.elapsed < seq.elapsed);
    assert_eq!(seq.results.len(), par.results.len());
    Ok(())
}
