//! Service discovery: attribute search with decomposed hypercubes.
//!
//! §3.4's last remark: when objects carry multiple attribute *fields*
//! (os, arch, service, region), decomposing the keyword space into one
//! small hypercube per field keeps each search cheap. This example
//! registers a fleet of machines and answers conjunctive multi-field
//! discovery queries.
//!
//! ```text
//! cargo run --example service_discovery
//! ```

use hyperdex::core::decompose::DecomposedIndex;
use hyperdex::core::{KeywordSet, ObjectId, SupersetQuery};
use hyperdex::simnet::rng::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut directory = DecomposedIndex::new(3);
    directory.add_field("os", 5)?;
    directory.add_field("arch", 4)?;
    directory.add_field("service", 6)?;
    directory.add_field("region", 4)?;

    // Register 500 machines with plausible attribute mixes.
    let oses = ["linux", "freebsd", "windows"];
    let arches = ["x86-64", "arm64", "riscv"];
    let services = ["http", "dns", "smtp", "ssh", "nfs", "postgres"];
    let regions = ["us-east", "eu-west", "ap-south"];
    let mut rng = SimRng::new(99);
    for i in 0..500u64 {
        let host = ObjectId::from_raw(i);
        let os = *rng.choose(&oses).expect("non-empty");
        let arch = *rng.choose(&arches).expect("non-empty");
        let region = *rng.choose(&regions).expect("non-empty");
        // Each host runs 1-3 services.
        let mut svc_set = KeywordSet::new();
        for _ in 0..=rng.gen_range(2) {
            svc_set.insert(
                rng.choose(&services)
                    .expect("non-empty")
                    .parse()
                    .expect("valid keyword"),
            );
        }
        directory.insert("os", host, KeywordSet::parse(os)?)?;
        directory.insert("arch", host, KeywordSet::parse(arch)?)?;
        directory.insert("service", host, svc_set)?;
        directory.insert("region", host, KeywordSet::parse(region)?)?;
    }
    println!("registered 500 machines across 4 attribute fields");

    // Single-field discovery: all linux machines (cheap — the os cube
    // has only 2^5 = 32 vertices).
    let linux = directory.superset_search(
        "os",
        &SupersetQuery::new(KeywordSet::parse("linux")?).use_cache(false),
    )?;
    println!(
        "\nlinux machines: {} ({} nodes contacted in the 32-vertex os cube)",
        linux.results.len(),
        linux.stats.nodes_contacted
    );

    // Conjunctive multi-field discovery: linux AND arm64 AND http.
    let (hits, stats) = directory.multi_field_search(&[
        (
            "os",
            SupersetQuery::new(KeywordSet::parse("linux")?).use_cache(false),
        ),
        (
            "arch",
            SupersetQuery::new(KeywordSet::parse("arm64")?).use_cache(false),
        ),
        (
            "service",
            SupersetQuery::new(KeywordSet::parse("http")?).use_cache(false),
        ),
    ])?;
    println!(
        "\nlinux + arm64 + http: {} machines, {} total nodes contacted",
        hits.len(),
        stats.nodes_contacted
    );
    for host in hits.iter().take(5) {
        println!("  {host}");
    }

    // Compare: a monolithic cube big enough for all fields would pay a
    // far larger search space per query (see the ablation experiment).
    println!(
        "\n(decomposed cubes: 32 + 16 + 64 + 16 = 128 vertices total, \
         vs 2^19 for one joint cube)"
    );
    Ok(())
}
