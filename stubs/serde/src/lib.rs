//! Offline stub of the `serde` facade.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface the repo actually uses: the two marker
//! traits and the derive macros (re-exported from the companion
//! `serde_derive` stub). No serialization format ships with the repo,
//! so empty marker traits are sufficient — the derives exist so type
//! definitions keep their `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` annotations and downstream bounds like
//! `T: Serialize + for<'de> Deserialize<'de>` stay satisfiable.
//! Swapping the real serde back in requires only a Cargo.toml change.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized.
///
/// The real trait's `serialize` method is omitted: nothing in this
/// workspace drives an actual serializer.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roundtrippable<T: Serialize + DeserializeOwned>() {}

    #[test]
    fn primitives_satisfy_bounds() {
        assert_roundtrippable::<u64>();
        assert_roundtrippable::<String>();
        assert_roundtrippable::<Vec<f64>>();
        assert_roundtrippable::<Option<(u8, String)>>();
    }
}
