//! Offline stub of serde's derive macros.
//!
//! Emits empty marker-trait impls (`impl serde::Serialize for T {}`)
//! for the stub `serde` facade vendored in this workspace. The
//! `#[serde(...)]` helper attribute is accepted and ignored. Only
//! non-generic types are supported — every derive site in this repo is
//! a plain struct, and a loud compile error beats silently wrong
//! generics handling.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following `struct`, `enum`, or
/// `union`, skipping attributes and visibility.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(ident) = tt {
            let s = ident.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Whether the definition introduces generic parameters (unsupported).
fn has_generics(input: &TokenStream, name: &str) -> bool {
    let mut after_name = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(ref ident) if ident.to_string() == name => after_name = true,
            TokenTree::Punct(ref p) if after_name => return p.as_char() == '<',
            TokenTree::Group(_) if after_name => return false,
            _ => {}
        }
    }
    false
}

fn derive_impl(input: TokenStream, template: &str) -> TokenStream {
    let name = type_name(&input).expect("serde_derive stub: no struct/enum/union name found");
    assert!(
        !has_generics(&input, &name),
        "serde_derive stub: generic type `{name}` is unsupported; vendor real serde instead"
    );
    template
        .replace("__NAME__", &name)
        .parse()
        .expect("generated impl parses")
}

/// Stub `#[derive(Serialize)]`: an empty marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_impl(input, "impl ::serde::Serialize for __NAME__ {}")
}

/// Stub `#[derive(Deserialize)]`: an empty marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_impl(input, "impl<'de> ::serde::Deserialize<'de> for __NAME__ {}")
}
