//! Offline stub of `proptest`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors a miniature property-testing engine with the same surface
//! the repo's test suites use: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], [`any`], `prop::collection::vec`, a
//! narrow character-class string strategy, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs via the
//!   assertion message but is not minimized.
//! * **Deterministic seeding** — each test derives its RNG seed from
//!   the test name, so runs are bit-reproducible; set `PROPTEST_CASES`
//!   to change the case count (default 32).
//! * **String strategies** support only `[c1-c2]{m,n}` character-class
//!   patterns (the one form used in-tree) and panic on anything else.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// How a failing test case reports itself: a plain message.
pub type TestCaseError = String;

/// Number of cases each `proptest!` test runs (env `PROPTEST_CASES`,
/// default 32).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// The deterministic RNG driving every strategy (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG seeded from a test's name so each test draws an
    /// independent, reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Multiply-shift; bias is immaterial for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a second strategy from it, and samples
    /// that (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 range: raw draw.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*
    };
}

int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Character-class string strategy: only `[c1-c2]{m,n}` is supported.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("proptest stub supports only \"[c1-c2]{{m,n}}\" string patterns, got {self:?}")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| (lo as u8 + rng.below((hi as u8 - lo as u8 + 1) as u64) as u8) as char)
            .collect()
    }
}

/// Parses `[c1-c2]{m,n}` into `(c1, c2, m, n)`.
fn parse_class_pattern(p: &str) -> Option<(char, char, usize, usize)> {
    let rest = p.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut cs = class.chars();
    let (lo, dash, hi) = (cs.next()?, cs.next()?, cs.next()?);
    if dash != '-' || cs.next().is_some() || !lo.is_ascii() || !hi.is_ascii() || lo > hi {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = counts.split_once(',')?;
    let (m, n) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
    (m <= n).then_some((lo, hi, m, n))
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a `use proptest::prelude::*;` test expects in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, Strategy};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs each contained test function over many sampled inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // `#[test]` goes here in a real test module.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..$crate::cases() {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!("proptest case {case} of {name} failed: {message}", name = stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (3u8..=5).sample(&mut rng);
            assert!((3..=5).contains(&w));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn string_class_pattern() {
        let mut rng = crate::TestRng::from_name("strings");
        for _ in 0..200 {
            let s = "[a-z]{1,12}".sample(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let mut rng = crate::TestRng::from_name("compose");
        let strat = (1usize..4)
            .prop_flat_map(|n| prop::collection::vec(0u64..10, n..=n))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            assert!((1..4).contains(&strat.sample(&mut rng)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::from_name("x");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::from_name("x");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 100 && b < 100, "bounds {} {}", a, b);
        }
    }
}
