//! Offline stub of `criterion`.
//!
//! Keeps the workspace's `benches/` targets compiling and runnable
//! without crates.io access. Measurement is deliberately crude — a
//! fixed-iteration wall-clock average printed per benchmark — with
//! none of criterion's statistics, warm-up, or HTML reports. The repo's
//! published numbers come from the `experiments` binary, not from
//! these micro-benches, so fidelity of the harness matters more than
//! fidelity of the measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark invocation.
const ITERS: u32 = 100;

/// The top-level benchmark driver handed to each group function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.parameter));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            parameter: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            parameter: parameter.to_string(),
        }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = Some(start.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }

    fn report(&self, name: &str) {
        match self.nanos_per_iter {
            Some(ns) => println!("bench {name}: {ns:.0} ns/iter (stub, {ITERS} iters)"),
            None => println!("bench {name}: no measurement recorded"),
        }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("stub/self_test", |b| b.iter(|| runs += 1));
        assert_eq!(runs, ITERS);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, n| b.iter(|| *n * 2));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).parameter, "f/3");
    }
}
