//! # hyperdex — facade crate
//!
//! One-stop entry point for the hyperdex workspace: a complete Rust
//! implementation of *Keyword Search in DHT-based Peer-to-Peer
//! Networks* (Joung, Fang & Yang, ICDCS 2005).
//!
//! The paper's scheme hashes every keyword to a bit position and
//! indexes each object at the single hypercube vertex determined by its
//! whole keyword set; superset queries walk the induced subhypercube
//! along a spanning binomial tree. See README.md and DESIGN.md for the
//! full tour.
//!
//! # Modules
//!
//! * [`core`] — the keyword index and search scheme (the contribution):
//!   [`core::KeywordSearchService`], [`core::HypercubeIndex`],
//!   [`core::SupersetQuery`], ranking, caching, baselines, analysis.
//! * [`dht`] — the Chord-like DHT substrate with the paper's
//!   generalized DOLR model.
//! * [`hypercube`] — vertices, induced subhypercubes, spanning binomial
//!   trees.
//! * [`simnet`] — the deterministic discrete-event network simulator.
//! * [`workload`] — synthetic corpus and query-log generation
//!   calibrated to the paper's dataset statistics.
//!
//! # Example
//!
//! ```
//! use hyperdex::core::{KeywordSearchService, KeywordSet, ObjectId, SupersetQuery};
//!
//! let mut svc = KeywordSearchService::builder().nodes(32).dimension(10).build()?;
//! let publisher = svc.random_node();
//! svc.publish(
//!     publisher,
//!     ObjectId::from_name("track-1"),
//!     KeywordSet::parse("jazz, piano, 1959")?,
//! )?;
//! let out = svc.superset_search(
//!     publisher,
//!     &SupersetQuery::new(KeywordSet::parse("jazz")?).threshold(10),
//! )?;
//! assert_eq!(out.outcome.results.len(), 1);
//! # Ok::<(), hyperdex::core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hyperdex_core as core;
pub use hyperdex_dht as dht;
pub use hyperdex_hypercube as hypercube;
pub use hyperdex_simnet as simnet;
pub use hyperdex_workload as workload;

/// Convenience re-exports of the types most applications touch.
///
/// ```
/// use hyperdex::prelude::*;
///
/// let mut index = HypercubeIndex::new(8, 0)?;
/// index.insert(ObjectId::from_name("doc"), KeywordSet::parse("a b")?)?;
/// assert_eq!(index.len(), 1);
/// # Ok::<(), Error>(())
/// ```
pub mod prelude {
    pub use hyperdex_core::{
        Error, HypercubeIndex, Keyword, KeywordSearchService, KeywordSet, ObjectId, RankedObject,
        SupersetQuery, TraversalOrder,
    };
    pub use hyperdex_dht::{Dolr, NodeId};
    pub use hyperdex_hypercube::{Shape, Vertex};
}
