//! Baseline comparisons: the hypercube scheme vs. the distributed
//! inverted index — result equivalence and the cost/load asymmetries
//! the paper claims.

use hyperdex::core::baseline::DistributedInvertedIndex;
use hyperdex::core::{HypercubeIndex, KeywordSet, SupersetQuery};
use hyperdex::workload::stats::gini;
use hyperdex::workload::{Corpus, CorpusConfig};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig::small_test(), 9)
}

fn build_both(corpus: &Corpus, r: u8) -> (HypercubeIndex, DistributedInvertedIndex) {
    let mut cube = HypercubeIndex::new(r, 0).expect("valid");
    let mut dii = DistributedInvertedIndex::new(r, 0).expect("valid");
    for (id, k) in corpus.indexable() {
        cube.insert(id, k.clone()).expect("non-empty");
        dii.insert(id, k);
    }
    (cube, dii)
}

#[test]
fn both_schemes_answer_conjunctive_queries_identically() {
    let corpus = corpus();
    let (mut cube, dii) = build_both(&corpus, 10);
    for record in corpus.records().iter().take(20) {
        // Query: the first two keywords of the record.
        let query: KeywordSet = record.keywords.iter().take(2).cloned().collect();
        let mut cube_hits: Vec<_> = cube
            .superset_search(&SupersetQuery::new(query.clone()).use_cache(false))
            .expect("valid")
            .results
            .iter()
            .map(|r| r.object)
            .collect();
        cube_hits.sort_unstable();
        let mut dii_hits = dii.query(&query).results;
        dii_hits.sort_unstable();
        assert_eq!(cube_hits, dii_hits, "query {query}");
    }
}

#[test]
fn insert_cost_one_vs_k() {
    let corpus = corpus();
    let r = 10u8;
    let mut dii = DistributedInvertedIndex::new(r, 0).expect("valid");
    let mut total_dii_cost = 0usize;
    let mut total_keywords = 0usize;
    for (id, k) in corpus.indexable().take(500) {
        total_dii_cost += dii.insert(id, k);
        total_keywords += k.len();
    }
    assert_eq!(
        total_dii_cost, total_keywords,
        "DII pays one node update per keyword"
    );
    // The hypercube pays exactly one node per object, by construction:
    // insert() returns the single vertex.
    let mut cube = HypercubeIndex::new(r, 0).expect("valid");
    for (id, k) in corpus.indexable().take(500) {
        cube.insert(id, k.clone()).expect("non-empty");
    }
    // 500 objects → at most 500 touched vertices, exactly one each.
    assert!(cube.materialized_nodes() <= 500);
}

#[test]
fn storage_redundancy_k_fold_for_dii() {
    let corpus = corpus();
    let (cube, dii) = build_both(&corpus, 10);
    let cube_storage: usize = cube.node_loads().iter().map(|&(_, l)| l).sum();
    assert_eq!(cube_storage, corpus.len(), "one entry per object");
    let mean_k = corpus.mean_keywords_per_object();
    let ratio = dii.total_postings() as f64 / cube_storage as f64;
    assert!(
        (ratio - mean_k).abs() < 0.5,
        "DII storage should be ≈{mean_k:.1}× ({ratio:.1}× measured)"
    );
}

#[test]
fn load_balance_hypercube_beats_dii() {
    let corpus = corpus();
    let (cube, dii) = build_both(&corpus, 10);
    let cube_loads: Vec<usize> = cube.node_loads().iter().map(|&(_, l)| l).collect();
    let dii_loads: Vec<usize> = dii.node_loads().iter().map(|&(_, l)| l).collect();
    let cube_gini = gini(&cube_loads, 1 << 10);
    let dii_gini = gini(&dii_loads, 1 << 10);
    assert!(
        cube_gini + 0.1 < dii_gini,
        "hypercube gini {cube_gini:.3} should beat DII gini {dii_gini:.3}"
    );
}

#[test]
fn dii_hot_spot_single_node_per_keyword() {
    // The paper's availability argument: in DII one node owns each
    // keyword; in the hypercube the keyword's objects spread.
    let corpus = corpus();
    let (cube, dii) = build_both(&corpus, 10);
    // Most popular keyword:
    let top = hyperdex::workload::Vocabulary::new(3_000, 1.0).word(0);
    let query: KeywordSet = [top.clone()].into_iter().collect();
    // DII: every posting for `top` lives on ONE node.
    let out = dii.query(&query);
    assert_eq!(out.stats.nodes_contacted, 1);
    // Hypercube: the same objects are indexed across many vertices.
    let holding_vertices = cube
        .node_loads()
        .iter()
        .filter(|&&(v, _)| {
            // Vertex indexes at least one object containing `top` iff it
            // is in the query's subcube and has a matching entry — cheap
            // proxy: subcube membership.
            v.contains(cube.vertex_for(&query))
        })
        .count();
    assert!(
        holding_vertices > 10,
        "hypercube spreads the keyword over {holding_vertices} vertices"
    );
}
