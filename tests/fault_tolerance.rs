//! Fault-tolerance integration: churn, crashes, surrogate routing, and
//! the §3.4 claim that no single failure blocks a keyword's queries.

use hyperdex::core::{HypercubeIndex, KeywordSet, ObjectId, SupersetQuery};
use hyperdex::dht::sim::SimDht;
use hyperdex::dht::{Dolr, NodeId};
use hyperdex::simnet::latency::LatencyModel;

#[test]
fn graceful_churn_preserves_all_references() {
    let mut dht = Dolr::builder().nodes(32).seed(1).build();
    let publisher = dht.random_node();
    let objects: Vec<ObjectId> = (0..200).map(ObjectId::from_raw).collect();
    for &obj in &objects {
        dht.insert(publisher, obj, publisher);
    }
    // Half the ring leaves gracefully.
    for _ in 0..16 {
        let victim = dht.ring().iter().nth(1).expect("nodes remain");
        dht.leave(victim);
    }
    let reader = dht.random_node();
    for &obj in &objects {
        assert!(dht.read(reader, obj).is_some(), "{obj} lost in churn");
    }
}

#[test]
fn joins_rebalance_without_losing_data() {
    let mut dht = Dolr::builder().nodes(8).seed(2).build();
    let publisher = dht.random_node();
    let objects: Vec<ObjectId> = (0..100).map(ObjectId::from_raw).collect();
    for &obj in &objects {
        dht.insert(publisher, obj, publisher);
    }
    for i in 0..24u64 {
        dht.join(NodeId::from_raw(i.wrapping_mul(0x0765_4321_FEDC_BA98)));
    }
    assert_eq!(dht.ring().len(), 32);
    let reader = dht.random_node();
    for &obj in &objects {
        assert!(dht.read(reader, obj).is_some(), "{obj} lost on join");
    }
}

#[test]
fn replication_covers_cascading_crashes() {
    let mut dht = Dolr::builder().nodes(24).seed(3).replication(3).build();
    let publisher = dht.random_node();
    let objects: Vec<ObjectId> = (0..50).map(ObjectId::from_raw).collect();
    for &obj in &objects {
        dht.insert(publisher, obj, publisher);
    }
    // Crash 10 nodes one at a time (re-replication runs after each).
    for _ in 0..10 {
        let victim = dht.ring().iter().last().expect("nodes remain");
        dht.crash(victim);
        let reader = dht.random_node();
        for &obj in &objects {
            assert!(dht.read(reader, obj).is_some(), "{obj} lost after crash");
        }
    }
}

#[test]
fn simulated_lookups_survive_node_failures() {
    let mut sim = SimDht::new(48, LatencyModel::constant(1), 5);
    let nodes = sim.nodes();
    // Crash a third of the ring (never the requester).
    for victim in nodes.iter().skip(1).step_by(3).take(16) {
        sim.crash(*victim);
    }
    sim.stabilize();
    // Every key must still resolve to a live owner.
    for i in 0..40u64 {
        let key = NodeId::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = sim
            .lookup(nodes[0], key)
            .expect("stabilized lookup succeeds");
        assert_eq!(Some(outcome.owner), sim.ring().surrogate(key));
        assert!(sim.ring().contains(outcome.owner), "owner is live");
    }
}

#[test]
fn keyword_queries_survive_single_index_node_loss() {
    // §3.4: a popular keyword's objects spread over many vertices, so
    // deleting any single vertex's table loses only that vertex's
    // objects, never the whole keyword.
    let mut index = HypercubeIndex::new(8, 0).expect("valid");
    let common = "popular";
    let objects: Vec<(ObjectId, KeywordSet)> = (0..200)
        .map(|i| {
            (
                ObjectId::from_raw(i),
                KeywordSet::parse(&format!("{common} unique{i} extra{}", i % 7))
                    .expect("parses"),
            )
        })
        .collect();
    for (id, k) in &objects {
        index.insert(*id, k.clone()).expect("non-empty");
    }
    let loads = index.node_loads();
    assert!(
        loads.len() > 10,
        "a popular keyword spreads over many vertices ({} here)",
        loads.len()
    );
    // Simulate losing the heaviest index vertex: remove its entries.
    let (heaviest, heavy_load) = loads
        .iter()
        .max_by_key(|&&(_, l)| l)
        .copied()
        .expect("non-empty");
    let lost: Vec<(ObjectId, KeywordSet)> = objects
        .iter()
        .filter(|(_, k)| index.vertex_for(k) == heaviest)
        .cloned()
        .collect();
    assert_eq!(lost.len(), heavy_load);
    for (id, k) in &lost {
        index.remove(*id, k);
    }
    // The keyword remains queryable; only the lost vertex's objects are
    // missing.
    let out = index
        .superset_search(
            &SupersetQuery::new(KeywordSet::parse(common).expect("parses")).use_cache(false),
        )
        .expect("valid");
    assert_eq!(out.results.len(), objects.len() - lost.len());
    assert!(
        out.results.len() > objects.len() / 2,
        "single node loss must not block the keyword"
    );
}

#[test]
fn lossy_network_lookups_eventually_succeed() {
    let mut sim = SimDht::new(32, LatencyModel::constant(1), 11);
    sim.network_mut().faults_mut().set_drop_probability(0.3);
    let nodes = sim.nodes();
    let key = NodeId::from_raw(u64::MAX / 7);
    // Individual lookups may die with 30% loss; retries (fresh messages)
    // must succeed within a bounded number of attempts.
    let mut succeeded = false;
    for _ in 0..20 {
        if sim.lookup(nodes[0], key).is_some() {
            succeeded = true;
            break;
        }
    }
    assert!(succeeded, "20 retries at 30% loss should succeed");
}
