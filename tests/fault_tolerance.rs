//! Fault-tolerance integration: churn, crashes, surrogate routing, and
//! the §3.4 claim that no single failure blocks a keyword's queries.

use hyperdex::core::sim_protocol::{FtConfig, FtSearchOutcome, ProtocolSim, RecoveryStrategy};
use hyperdex::core::{HypercubeIndex, KeywordSet, ObjectId, SupersetQuery};
use hyperdex::dht::sim::SimDht;
use hyperdex::dht::{Dolr, NodeId};
use hyperdex::simnet::latency::LatencyModel;

#[test]
fn graceful_churn_preserves_all_references() {
    let mut dht = Dolr::builder().nodes(32).seed(1).build();
    let publisher = dht.random_node();
    let objects: Vec<ObjectId> = (0..200).map(ObjectId::from_raw).collect();
    for &obj in &objects {
        dht.insert(publisher, obj, publisher);
    }
    // Half the ring leaves gracefully.
    for _ in 0..16 {
        let victim = dht.ring().iter().nth(1).expect("nodes remain");
        dht.leave(victim);
    }
    let reader = dht.random_node();
    for &obj in &objects {
        assert!(dht.read(reader, obj).is_some(), "{obj} lost in churn");
    }
}

#[test]
fn joins_rebalance_without_losing_data() {
    let mut dht = Dolr::builder().nodes(8).seed(2).build();
    let publisher = dht.random_node();
    let objects: Vec<ObjectId> = (0..100).map(ObjectId::from_raw).collect();
    for &obj in &objects {
        dht.insert(publisher, obj, publisher);
    }
    for i in 0..24u64 {
        dht.join(NodeId::from_raw(i.wrapping_mul(0x0765_4321_FEDC_BA98)));
    }
    assert_eq!(dht.ring().len(), 32);
    let reader = dht.random_node();
    for &obj in &objects {
        assert!(dht.read(reader, obj).is_some(), "{obj} lost on join");
    }
}

#[test]
fn replication_covers_cascading_crashes() {
    let mut dht = Dolr::builder().nodes(24).seed(3).replication(3).build();
    let publisher = dht.random_node();
    let objects: Vec<ObjectId> = (0..50).map(ObjectId::from_raw).collect();
    for &obj in &objects {
        dht.insert(publisher, obj, publisher);
    }
    // Crash 10 nodes one at a time (re-replication runs after each).
    for _ in 0..10 {
        let victim = dht.ring().iter().last().expect("nodes remain");
        dht.crash(victim);
        let reader = dht.random_node();
        for &obj in &objects {
            assert!(dht.read(reader, obj).is_some(), "{obj} lost after crash");
        }
    }
}

#[test]
fn simulated_lookups_survive_node_failures() {
    let mut sim = SimDht::new(48, LatencyModel::constant(1), 5);
    let nodes = sim.nodes();
    // Crash a third of the ring (never the requester).
    for victim in nodes.iter().skip(1).step_by(3).take(16) {
        sim.crash(*victim);
    }
    sim.stabilize();
    // Every key must still resolve to a live owner.
    for i in 0..40u64 {
        let key = NodeId::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = sim
            .lookup(nodes[0], key)
            .expect("stabilized lookup succeeds");
        assert_eq!(Some(outcome.owner), sim.ring().surrogate(key));
        assert!(sim.ring().contains(outcome.owner), "owner is live");
    }
}

#[test]
fn keyword_queries_survive_single_index_node_loss() {
    // §3.4: a popular keyword's objects spread over many vertices, so
    // deleting any single vertex's table loses only that vertex's
    // objects, never the whole keyword.
    let mut index = HypercubeIndex::new(8, 0).expect("valid");
    let common = "popular";
    let objects: Vec<(ObjectId, KeywordSet)> = (0..200)
        .map(|i| {
            (
                ObjectId::from_raw(i),
                KeywordSet::parse(&format!("{common} unique{i} extra{}", i % 7)).expect("parses"),
            )
        })
        .collect();
    for (id, k) in &objects {
        index.insert(*id, k.clone()).expect("non-empty");
    }
    let loads = index.node_loads();
    assert!(
        loads.len() > 10,
        "a popular keyword spreads over many vertices ({} here)",
        loads.len()
    );
    // Simulate losing the heaviest index vertex: remove its entries.
    let (heaviest, heavy_load) = loads
        .iter()
        .max_by_key(|&&(_, l)| l)
        .copied()
        .expect("non-empty");
    let lost: Vec<(ObjectId, KeywordSet)> = objects
        .iter()
        .filter(|(_, k)| index.vertex_for(k) == heaviest)
        .cloned()
        .collect();
    assert_eq!(lost.len(), heavy_load);
    for (id, k) in &lost {
        index.remove(*id, k);
    }
    // The keyword remains queryable; only the lost vertex's objects are
    // missing.
    let out = index
        .superset_search(
            &SupersetQuery::new(KeywordSet::parse(common).expect("parses")).use_cache(false),
        )
        .expect("valid");
    assert_eq!(out.results.len(), objects.len() - lost.len());
    assert!(
        out.results.len() > objects.len() / 2,
        "single node loss must not block the keyword"
    );
}

#[test]
fn lossy_network_lookups_eventually_succeed() {
    let mut sim = SimDht::new(32, LatencyModel::constant(1), 11);
    sim.network_mut().faults_mut().set_drop_probability(0.3);
    let nodes = sim.nodes();
    let key = NodeId::from_raw(u64::MAX / 7);
    // Individual lookups may die with 30% loss; retries (fresh messages)
    // must succeed within a bounded number of attempts.
    let mut succeeded = false;
    for _ in 0..20 {
        if sim.lookup(nodes[0], key).is_some() {
            succeeded = true;
            break;
        }
    }
    assert!(succeeded, "20 retries at 30% loss should succeed");
}

// ---------------------------------------------------------------------
// Message-level fault-tolerant superset search
// ---------------------------------------------------------------------

/// Unbounded-but-valid threshold (usize::MAX would be fine too; this
/// mirrors the unit tests).
const ALL: usize = usize::MAX >> 1;

fn set(s: &str) -> KeywordSet {
    KeywordSet::parse(s).expect("parses")
}

/// A populated 8-dimensional protocol simulation: 300 objects sharing
/// the keyword `common`, spread over the subcube by unique keywords.
fn protocol_sim(seed: u64) -> ProtocolSim {
    let mut sim = ProtocolSim::new(8, seed, LatencyModel::constant(1)).expect("valid");
    for i in 0..300u64 {
        let k = set(&format!("common unique{i} tag{}", i % 5));
        sim.insert(ObjectId::from_raw(i), k).expect("non-empty");
    }
    sim
}

fn sorted_ids(out: &FtSearchOutcome) -> Vec<ObjectId> {
    let mut v: Vec<ObjectId> = out.results.iter().map(|r| r.object).collect();
    v.sort_unstable();
    v
}

#[test]
fn lossy_search_with_retry_budget_matches_fault_free_run() {
    // Fault-free reference: even the naive strategy covers everything.
    let baseline = protocol_sim(7)
        .search_fault_tolerant(&set("common"), ALL, FtConfig::new(RecoveryStrategy::Naive))
        .expect("valid");
    let baseline_ids = sorted_ids(&baseline);
    assert!(!baseline_ids.is_empty(), "reference run must find objects");

    // Same index, 20% message loss, generous retry budget.
    let mut sim = protocol_sim(7);
    sim.network_mut().faults_mut().set_drop_probability(0.2);
    let out = sim
        .search_fault_tolerant(
            &set("common"),
            ALL,
            FtConfig::new(RecoveryStrategy::RetryOnly).max_retries(12),
        )
        .expect("valid");
    assert_eq!(
        sorted_ids(&out),
        baseline_ids,
        "retries must recover the exact fault-free result set"
    );
    assert!(out.coverage.retries > 0, "20% loss must trigger retries");
    assert_eq!(out.coverage.vertices_reached, out.coverage.subcube_vertices);
    assert!(out.coverage.skipped.is_empty());
}

#[test]
fn crashed_subtree_root_is_fully_covered_by_redelegation() {
    // Kill the root's highest-dimension SBT child: its subtree is half
    // the query subcube — the worst single crash below the root.
    let mut sim = protocol_sim(7);
    let root = sim.query_root(&set("common"));
    let dead = root.flip(root.zero_positions().next_back().expect("has zeros"));
    let dead_ep = sim.endpoint_of(dead.bits());
    sim.network_mut().faults_mut().kill(dead_ep);

    let out = sim
        .search_fault_tolerant(
            &set("common"),
            ALL,
            FtConfig::new(RecoveryStrategy::Redelegate),
        )
        .expect("valid");
    // Exactly the crashed vertex is lost; every vertex of its subtree
    // was re-delegated and answered.
    assert_eq!(out.coverage.skipped, vec![dead.bits()]);
    assert_eq!(
        out.coverage.vertices_reached,
        out.coverage.subcube_vertices - 1
    );
    assert!(
        out.coverage.redelegations >= 1,
        "subtree must be re-delegated"
    );

    // Contrast: retry-only abandons the whole half-cube. Endpoints are
    // materialized lazily per simulation, so the dead vertex must be
    // re-resolved in the fresh one.
    let mut sim = protocol_sim(7);
    let dead_ep = sim.endpoint_of(dead.bits());
    sim.network_mut().faults_mut().kill(dead_ep);
    let abandoned = sim
        .search_fault_tolerant(
            &set("common"),
            ALL,
            FtConfig::new(RecoveryStrategy::RetryOnly),
        )
        .expect("valid");
    assert_eq!(
        abandoned.coverage.vertices_skipped,
        out.coverage.subcube_vertices / 2,
        "without re-delegation the dead child's half-cube is lost"
    );
}

#[test]
fn acceptance_crashes_plus_loss_terminate_with_exact_accounting() {
    // The headline scenario: fixed seed, 20% drop, three crashed
    // vertices inside the query subcube. The search must terminate,
    // cover every live vertex, and account exactly for the dead ones —
    // deterministically.
    let run = || {
        let mut sim = protocol_sim(11);
        let root = sim.query_root(&set("common"));
        let root_bits = root.bits();
        // Three proper superset vertices of the root (in its subcube).
        let crashed: Vec<u64> = (0..256u64)
            .filter(|&bits| bits != root_bits && bits & root_bits == root_bits)
            .take(3)
            .collect();
        assert_eq!(crashed.len(), 3, "subcube too small for the scenario");
        for &bits in &crashed {
            let ep = sim.endpoint_of(bits);
            sim.network_mut().faults_mut().kill(ep);
        }
        sim.network_mut().faults_mut().set_drop_probability(0.2);
        let out = sim
            .search_fault_tolerant(
                &set("common"),
                ALL,
                FtConfig::new(RecoveryStrategy::Redelegate).max_retries(10),
            )
            .expect("valid");

        // Terminated (we are here) with every live vertex covered:
        // skipped is exactly the crashed set.
        let mut expected = crashed.clone();
        expected.sort_unstable();
        assert_eq!(out.coverage.skipped, expected);
        assert_eq!(out.coverage.vertices_skipped, 3);
        assert_eq!(
            out.coverage.vertices_reached,
            out.coverage.subcube_vertices - 3
        );
        assert!(out.coverage.timeouts >= 3, "each dead vertex times out");
        assert!(out.coverage.retries >= out.coverage.timeouts);
        (sorted_ids(&out), out.coverage)
    };
    let (ids_a, cov_a) = run();
    let (ids_b, cov_b) = run();
    assert_eq!(ids_a, ids_b, "result set must be reproducible");
    assert_eq!(cov_a, cov_b, "coverage report must be reproducible");
}
