//! Decomposed-index integration (§3.4): per-field hypercubes over one
//! shared object space.

use hyperdex::core::decompose::DecomposedIndex;
use hyperdex::core::{KeywordSet, ObjectId, SupersetQuery};
use hyperdex::simnet::rng::SimRng;

/// A registered machine: id, os, arch, services.
type Machine = (ObjectId, String, String, Vec<String>);

/// Builds a machine directory across three fields.
fn directory() -> (DecomposedIndex, Vec<Machine>) {
    let mut idx = DecomposedIndex::new(1);
    idx.add_field("os", 5).expect("valid");
    idx.add_field("arch", 4).expect("valid");
    idx.add_field("service", 6).expect("valid");
    let oses = ["linux", "freebsd", "windows"];
    let arches = ["x86-64", "arm64"];
    let services = ["http", "dns", "ssh", "smtp"];
    let mut rng = SimRng::new(17);
    let mut machines = Vec::new();
    for i in 0..300u64 {
        let id = ObjectId::from_raw(i);
        let os = oses[rng.gen_index(oses.len())].to_string();
        let arch = arches[rng.gen_index(arches.len())].to_string();
        let svc_count = 1 + rng.gen_index(2);
        let mut svcs: Vec<String> = Vec::new();
        while svcs.len() < svc_count {
            let s = services[rng.gen_index(services.len())].to_string();
            if !svcs.contains(&s) {
                svcs.push(s);
            }
        }
        idx.insert("os", id, KeywordSet::parse(&os).expect("parses"))
            .expect("field exists");
        idx.insert("arch", id, KeywordSet::parse(&arch).expect("parses"))
            .expect("field exists");
        idx.insert("service", id, KeywordSet::from_strs(&svcs).expect("parses"))
            .expect("field exists");
        machines.push((id, os, arch, svcs));
    }
    (idx, machines)
}

#[test]
fn single_field_queries_match_ground_truth() {
    let (mut idx, machines) = directory();
    let out = idx
        .superset_search(
            "os",
            &SupersetQuery::new(KeywordSet::parse("linux").expect("parses")).use_cache(false),
        )
        .expect("field exists");
    let expected = machines
        .iter()
        .filter(|(_, os, _, _)| os == "linux")
        .count();
    assert_eq!(out.results.len(), expected);
}

#[test]
fn multi_field_conjunction_matches_ground_truth() {
    let (mut idx, machines) = directory();
    let (hits, _) = idx
        .multi_field_search(&[
            (
                "os",
                SupersetQuery::new(KeywordSet::parse("linux").expect("parses")).use_cache(false),
            ),
            (
                "service",
                SupersetQuery::new(KeywordSet::parse("http").expect("parses")).use_cache(false),
            ),
        ])
        .expect("fields exist");
    let expected: Vec<ObjectId> = machines
        .iter()
        .filter(|(_, os, _, svcs)| os == "linux" && svcs.contains(&"http".to_string()))
        .map(|(id, _, _, _)| *id)
        .collect();
    assert_eq!(hits.len(), expected.len());
    for id in &expected {
        assert!(hits.contains(id));
    }
}

#[test]
fn field_removal_is_scoped() {
    let (mut idx, machines) = directory();
    let (id, os, _, svcs) = machines[0].clone();
    idx.remove("os", id, &KeywordSet::parse(&os).expect("parses"))
        .expect("field exists");
    // Gone from os searches...
    let out = idx
        .superset_search(
            "os",
            &SupersetQuery::new(KeywordSet::parse(&os).expect("parses")).use_cache(false),
        )
        .expect("field exists");
    assert!(!out.results.iter().any(|r| r.object == id));
    // ...but still present in service searches.
    let out = idx
        .superset_search(
            "service",
            &SupersetQuery::new(KeywordSet::parse(&svcs[0]).expect("parses")).use_cache(false),
        )
        .expect("field exists");
    assert!(out.results.iter().any(|r| r.object == id));
}

#[test]
fn per_field_search_cost_is_bounded_by_field_cube() {
    let (mut idx, _) = directory();
    let out = idx
        .superset_search(
            "arch",
            &SupersetQuery::new(KeywordSet::parse("arm64").expect("parses")).use_cache(false),
        )
        .expect("field exists");
    assert!(
        out.stats.nodes_contacted <= 1 << 4,
        "arch cube has 16 vertices, contacted {}",
        out.stats.nodes_contacted
    );
}

#[test]
fn unknown_field_is_an_error_not_a_panic() {
    let (mut idx, _) = directory();
    assert!(idx
        .superset_search(
            "datacenter",
            &SupersetQuery::new(KeywordSet::parse("x").expect("parses")),
        )
        .is_err());
}
