//! Property: the 64-bit keyword-signature prefilter never changes what
//! a superset scan returns — only how much string comparison it costs.
//!
//! The keyword pool is deliberately larger (200 keywords) than the
//! signature width (64 bits), so by pigeonhole many distinct keywords
//! collide onto the same signature bit. Collisions make the prefilter
//! over-match — exactly the case where a buggy filter could diverge —
//! and the property requires byte-identical `(keyword_set, objects)`
//! lists anyway, because every prefilter pass is confirmed by
//! [`KeywordSet::is_superset`].

use std::sync::Arc;

use hyperdex::core::{HypercubeIndex, IndexTable, KeywordSet, ObjectId, SupersetQuery};
use hyperdex::simnet::rng::SimRng;

/// 200 keywords over 64 signature bits: collisions guaranteed.
fn pool() -> Vec<String> {
    (0..200).map(|i| format!("kw{i}")).collect()
}

/// A random keyword set of `len` draws (dedup may shrink it).
fn random_set(rng: &mut SimRng, pool: &[String], len: usize) -> KeywordSet {
    let words: Vec<&str> = (0..len)
        .map(|_| pool[rng.gen_index(pool.len())].as_str())
        .collect();
    KeywordSet::parse(&words.join(" ")).expect("pool words are valid")
}

/// Collects a scan into comparable `(set, objects)` pairs.
fn collect<'a>(
    it: impl Iterator<Item = (&'a Arc<KeywordSet>, impl Iterator<Item = ObjectId> + 'a)>,
) -> Vec<(Arc<KeywordSet>, Vec<ObjectId>)> {
    it.map(|(k, objs)| (Arc::clone(k), objs.collect()))
        .collect()
}

proptest::proptest! {
    /// Table-level parity: the prefiltered scan and the unfiltered
    /// baseline return byte-identical entry lists for random corpora,
    /// dimensions, and query sizes — hash collisions included.
    #[test]
    fn masked_scan_is_byte_identical_to_unfiltered(seed in 0u64..48) {
        let mut rng = SimRng::new(seed);
        let pool = pool();
        let r = 4 + (rng.gen_range(7) as u8); // 4..=10
        let n_objects = 150 + rng.gen_index(150);

        let mut table = IndexTable::new();
        let mut engine = HypercubeIndex::new(r, seed).expect("valid r");
        let mut corpus_sets = Vec::new();
        for id in 0..n_objects as u64 {
            let len = 1 + rng.gen_index(4);
            let k = random_set(&mut rng, &pool, len);
            table.insert(k.clone(), ObjectId::from_raw(id));
            engine.insert(ObjectId::from_raw(id), k.clone()).expect("non-empty");
            corpus_sets.push(k);
        }

        // Random queries (mostly misses on the full set, partial hits
        // on single keywords) plus queries drawn from actual corpus
        // sets (guaranteed hits, including exact matches).
        let mut queries: Vec<KeywordSet> = (0..6)
            .map(|_| {
                let len = 1 + rng.gen_index(3);
                random_set(&mut rng, &pool, len)
            })
            .collect();
        for _ in 0..4 {
            let donor = &corpus_sets[rng.gen_index(corpus_sets.len())];
            queries.push(donor.clone());
        }
        queries.push(KeywordSet::new()); // qsig = 0: filter must pass all

        for q in &queries {
            let masked = collect(table.superset_entries(q));
            let plain = collect(table.superset_entries_unfiltered(q));
            proptest::prop_assert_eq!(
                &masked, &plain,
                "seed {} r {} query {:?}: prefilter changed the scan", seed, r, q
            );

            // Engine-level parity: the full outcome — results, stats,
            // exhaustion — is equal with the prefilter on and off.
            if q.is_empty() {
                continue; // engine rejects empty queries by contract
            }
            let on = engine
                .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
                .expect("valid");
            let off = engine
                .superset_search(&SupersetQuery::new(q.clone()).use_cache(false).mask(false))
                .expect("valid");
            proptest::prop_assert_eq!(
                &on, &off,
                "seed {} r {} query {:?}: outcome diverged", seed, r, q
            );
        }
    }
}

#[test]
fn collisions_actually_occur_in_the_pool() {
    // Meta-check: the property above only exercises the interesting
    // case if distinct keywords really share signature bits.
    let sigs: Vec<u64> = pool()
        .iter()
        .map(|w| KeywordSet::parse(w).unwrap().signature())
        .collect();
    let distinct: std::collections::HashSet<u64> = sigs.iter().copied().collect();
    assert!(
        distinct.len() < sigs.len(),
        "200 keywords over 64 bits must collide"
    );
}
