//! End-to-end integration: corpus → DHT-backed service → search →
//! reference fetch, across crate boundaries.

use hyperdex::core::search::TraversalOrder;
use hyperdex::core::{KeywordSearchService, KeywordSet, SupersetQuery};
use hyperdex::workload::{Corpus, CorpusConfig};

fn service_with_corpus(objects: usize) -> (KeywordSearchService, Corpus, hyperdex::dht::NodeId) {
    let corpus = Corpus::generate(&CorpusConfig::small_test().with_objects(objects), 7);
    let mut svc = KeywordSearchService::builder()
        .nodes(48)
        .dimension(10)
        .seed(3)
        .build()
        .expect("valid configuration");
    let publisher = svc.random_node();
    for (id, keywords) in corpus.indexable() {
        svc.publish(publisher, id, keywords.clone())
            .expect("publishable");
    }
    (svc, corpus, publisher)
}

#[test]
fn every_published_object_is_pin_findable() {
    let (mut svc, corpus, _publisher) = service_with_corpus(300);
    let requester = svc.random_node();
    for record in corpus.records().iter().take(100) {
        let out = svc.pin_search(requester, &record.keywords);
        assert!(
            out.outcome.results.contains(&record.object_id()),
            "record {} not pin-findable under {}",
            record.id,
            record.keywords
        );
    }
}

#[test]
fn superset_search_finds_all_and_only_matches() {
    let (mut svc, corpus, _publisher) = service_with_corpus(300);
    let requester = svc.random_node();
    // Use each of the first few records' first keyword as a query.
    for record in corpus.records().iter().take(10) {
        let first_kw = record.keywords.iter().next().expect("non-empty").clone();
        let query: KeywordSet = [first_kw].into_iter().collect();
        let out = svc
            .superset_search(
                requester,
                &SupersetQuery::new(query.clone()).use_cache(false),
            )
            .expect("valid query");
        let expected: std::collections::BTreeSet<_> = corpus
            .records()
            .iter()
            .filter(|r| query.describes(&r.keywords))
            .map(|r| r.object_id())
            .collect();
        let got: std::collections::BTreeSet<_> =
            out.outcome.results.iter().map(|r| r.object).collect();
        assert_eq!(got, expected, "query {query}");
    }
}

#[test]
fn search_results_lead_to_fetchable_references() {
    let (mut svc, corpus, _publisher) = service_with_corpus(100);
    let requester = svc.random_node();
    let record = &corpus.records()[0];
    let out = svc.pin_search(requester, &record.keywords);
    for obj in &out.outcome.results {
        let reference = svc
            .fetch_reference(requester, *obj)
            .expect("every indexed object has a reference");
        assert!(!reference.refs.is_empty());
    }
}

#[test]
fn withdraw_makes_objects_unfindable() {
    // Withdraw from the SAME node that published: references are
    // per-owner pairs (σ, u), so another node's withdraw is a no-op.
    let (mut svc, corpus, publisher) = service_with_corpus(50);
    for record in corpus.records().iter().take(20) {
        svc.withdraw(publisher, record.object_id(), &record.keywords);
    }
    let requester = svc.random_node();
    for record in corpus.records().iter().take(20) {
        let out = svc.pin_search(requester, &record.keywords);
        assert!(
            !out.outcome.results.contains(&record.object_id()),
            "withdrawn record {} still findable",
            record.id
        );
    }
}

#[test]
fn dht_hops_stay_logarithmic() {
    let (mut svc, corpus, _publisher) = service_with_corpus(100);
    let requester = svc.random_node();
    for record in corpus.records().iter().take(30) {
        let out = svc.pin_search(requester, &record.keywords);
        assert!(
            out.dht_hops <= 12,
            "pin search took {} hops on a 48-node ring",
            out.dht_hops
        );
    }
}

#[test]
fn bottom_up_returns_deepest_first_end_to_end() {
    let (mut svc, corpus, _publisher) = service_with_corpus(200);
    let requester = svc.random_node();
    let record = &corpus.records()[0];
    let first_kw = record.keywords.iter().next().expect("non-empty").clone();
    let query: KeywordSet = [first_kw].into_iter().collect();
    let td = svc
        .superset_search(
            requester,
            &SupersetQuery::new(query.clone()).use_cache(false),
        )
        .expect("valid");
    let bu = svc
        .superset_search(
            requester,
            &SupersetQuery::new(query)
                .use_cache(false)
                .order(TraversalOrder::BottomUp),
        )
        .expect("valid");
    // Same set, opposite preference.
    let td_set: std::collections::BTreeSet<_> =
        td.outcome.results.iter().map(|r| r.object).collect();
    let bu_set: std::collections::BTreeSet<_> =
        bu.outcome.results.iter().map(|r| r.object).collect();
    assert_eq!(td_set, bu_set);
}
