//! Cumulative (paged) search integration over a realistic corpus.

use hyperdex::core::search::cumulative::CumulativeSearch;
use hyperdex::core::{HypercubeIndex, KeywordSet, SupersetQuery};
use hyperdex::workload::{Corpus, CorpusConfig};

fn setup() -> (HypercubeIndex, KeywordSet, usize) {
    let corpus = Corpus::generate(&CorpusConfig::small_test(), 13);
    let mut index = HypercubeIndex::new(10, 0).expect("valid");
    for (id, k) in corpus.indexable() {
        index.insert(id, k.clone()).expect("non-empty");
    }
    // The most popular word has many matches — good for paging.
    let query: KeywordSet = [hyperdex::workload::Vocabulary::new(3_000, 1.0).word(0)]
        .into_iter()
        .collect();
    let total = index.matching_count(&query);
    assert!(total > 20, "need a popular query, got {total}");
    (index, query, total)
}

#[test]
fn paging_covers_everything_without_repeats() {
    let (index, query, total) = setup();
    let mut session = CumulativeSearch::new(&index, query);
    let mut seen = std::collections::HashSet::new();
    let page_size = 7;
    let mut pages = 0;
    while !session.is_finished() && pages < 10_000 {
        let batch = session.next_batch(&index, page_size).expect("valid");
        for r in &batch.results {
            assert!(seen.insert(r.object), "object repeated across pages");
        }
        pages += 1;
        if batch.results.is_empty() {
            break;
        }
    }
    assert_eq!(seen.len(), total, "paging must cover every match");
}

#[test]
fn paged_and_oneshot_return_the_same_set() {
    let (mut index, query, total) = setup();
    let oneshot: std::collections::BTreeSet<_> = index
        .superset_search(&SupersetQuery::new(query.clone()).use_cache(false))
        .expect("valid")
        .results
        .iter()
        .map(|r| r.object)
        .collect();
    assert_eq!(oneshot.len(), total);
    let mut session = CumulativeSearch::new(&index, query);
    let mut paged = std::collections::BTreeSet::new();
    while !session.is_finished() {
        let batch = session.next_batch(&index, 16).expect("valid");
        if batch.results.is_empty() && session.is_finished() {
            break;
        }
        paged.extend(batch.results.iter().map(|r| r.object));
    }
    assert_eq!(paged, oneshot);
}

#[test]
fn total_paged_cost_matches_oneshot_cost() {
    let (mut index, query, _) = setup();
    let oneshot_nodes = index
        .superset_search(&SupersetQuery::new(query.clone()).use_cache(false))
        .expect("valid")
        .stats
        .nodes_contacted;
    let mut session = CumulativeSearch::new(&index, query);
    let mut paged_nodes = 0;
    while !session.is_finished() {
        let batch = session.next_batch(&index, 10).expect("valid");
        paged_nodes += batch.stats.nodes_contacted;
        if batch.results.is_empty() && session.is_finished() {
            break;
        }
    }
    // The session never re-contacts a node, so total cost equals the
    // one-shot traversal.
    assert_eq!(paged_nodes, oneshot_nodes);
}

#[test]
fn small_pages_contact_few_nodes_per_page() {
    let (index, query, _) = setup();
    let mut session = CumulativeSearch::new(&index, query);
    let first = session.next_batch(&index, 3).expect("valid");
    assert_eq!(first.results.len(), 3);
    // Popular query ⇒ the first page should come from a handful of
    // nodes, not the whole subcube.
    assert!(
        first.stats.nodes_contacted < 64,
        "first page contacted {} nodes",
        first.stats.nodes_contacted
    );
}
