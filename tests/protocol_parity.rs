//! Parity between the direct search engine and the message-level
//! protocol execution, on a realistic corpus — plus replicated-index
//! failover end-to-end.

use hyperdex::core::replication::ReplicatedIndex;
use hyperdex::core::sim_protocol::ProtocolSim;
use hyperdex::core::{HypercubeIndex, KeywordSet, ObjectId, SupersetQuery};
use hyperdex::simnet::latency::LatencyModel;
use hyperdex::simnet::rng::SimRng;
use hyperdex::workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig::small_test().with_objects(1_500), 21)
}

#[test]
fn message_protocol_matches_direct_engine_on_corpus() {
    let corpus = corpus();
    let log = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 22);
    let mut direct = HypercubeIndex::new(9, 0).expect("valid");
    let mut sim = ProtocolSim::new(9, 0, LatencyModel::constant(1)).expect("valid");
    for (id, k) in corpus.indexable() {
        direct.insert(id, k.clone()).expect("non-empty");
        sim.insert(id, k.clone()).expect("non-empty");
    }
    for q in log.pool().iter().take(25) {
        let d = direct
            .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
            .expect("valid");
        let s = sim.search_sequential(q, usize::MAX - 1).expect("valid");
        let mut d_ids: Vec<ObjectId> = d.results.iter().map(|r| r.object).collect();
        let mut s_ids: Vec<ObjectId> = s.results.iter().map(|r| r.object).collect();
        d_ids.sort_unstable();
        s_ids.sort_unstable();
        assert_eq!(d_ids, s_ids, "query {q}");
        assert_eq!(
            d.stats.nodes_contacted, s.nodes_contacted,
            "node-count parity for {q}"
        );
        assert_eq!(
            d.stats.query_messages, s.nodes_contacted,
            "one T_QUERY per contacted node"
        );
    }
}

#[test]
fn protocol_latency_reflects_execution_mode() {
    let corpus = corpus();
    let mut sim = ProtocolSim::new(10, 0, LatencyModel::constant(3)).expect("valid");
    for (id, k) in corpus.indexable() {
        sim.insert(id, k.clone()).expect("non-empty");
    }
    // Use a popular single keyword: a large subcube.
    let q = KeywordSet::parse("kw000000").expect("valid");
    let seq = sim.search_sequential(&q, usize::MAX - 1).expect("valid");
    let par = sim.search_parallel(&q, usize::MAX - 1).expect("valid");
    assert!(
        par.elapsed.ticks() * 4 < seq.elapsed.ticks(),
        "parallel ({}) should be several times faster than sequential ({})",
        par.elapsed.ticks(),
        seq.elapsed.ticks()
    );
    // Both exchange roughly the same number of query messages.
    assert_eq!(seq.nodes_contacted, par.nodes_contacted);
}

#[test]
fn replicated_index_survives_random_vertex_crashes() {
    let corpus = corpus();
    let mut idx = ReplicatedIndex::new(9, 0).expect("valid");
    for (id, k) in corpus.indexable() {
        idx.insert(id, k.clone()).expect("non-empty");
    }
    // Crash 40 random primary vertices.
    let loads: Vec<_> = idx.primary().node_loads();
    let mut rng = SimRng::new(5);
    let victims: Vec<_> = (0..40)
        .map(|_| loads[rng.gen_index(loads.len())].0)
        .collect();
    for v in victims {
        idx.fail_primary(v);
    }
    // Every object remains pin-findable through failover.
    for record in corpus.records().iter().take(300) {
        let out = idx.pin_search(&record.keywords);
        assert!(
            out.results.contains(&record.object_id()),
            "record {} lost despite replication",
            record.id
        );
    }
}

#[test]
fn replicated_superset_completeness_after_crashes() {
    let corpus = corpus();
    let mut idx = ReplicatedIndex::new(9, 0).expect("valid");
    for (id, k) in corpus.indexable() {
        idx.insert(id, k.clone()).expect("non-empty");
    }
    let q = KeywordSet::parse("kw000000").expect("valid");
    let truth = idx.primary().matching_count(&q);
    // Crash the three heaviest primary nodes in the query's subcube.
    let root = idx.primary().vertex_for(&q);
    let mut in_cube: Vec<_> = idx
        .primary()
        .node_loads()
        .into_iter()
        .filter(|&(v, _)| v.contains(root))
        .collect();
    in_cube.sort_by_key(|&(_, l)| std::cmp::Reverse(l));
    for &(v, _) in in_cube.iter().take(3) {
        idx.fail_primary(v);
    }
    let out = idx
        .superset_search(&SupersetQuery::new(q).use_cache(false))
        .expect("valid");
    assert_eq!(
        out.results.len(),
        truth,
        "failover search must restore full recall"
    );
}

#[test]
fn gray_walks_give_single_hop_traversals() {
    // The Gray-order walk of any query subcube crosses one overlay edge
    // per step — the neighbor-caching optimization §3.4 mentions.
    let corpus = corpus();
    let index = {
        let mut idx = HypercubeIndex::new(8, 0).expect("valid");
        for (id, k) in corpus.indexable() {
            idx.insert(id, k.clone()).expect("non-empty");
        }
        idx
    };
    let q = KeywordSet::parse("kw000001").expect("valid");
    let sub = index.vertex_for(&q).subcube();
    let walk: Vec<_> = hyperdex::hypercube::gray::walk(sub).collect();
    assert_eq!(walk.len() as u64, sub.len());
    for pair in walk.windows(2) {
        assert_eq!(pair[0].hamming(pair[1]), 1);
    }
}
