//! Regression: a 48-dimensional cube must construct in O(1) and serve
//! inserts, pin lookups, and superset queries end-to-end.
//!
//! The protocol simulation used to allocate two dense `2^r` table
//! vectors plus one endpoint per vertex at construction — `r = 48`
//! meant ~2.3 PB of `Vec` headers before the first insert. Vertex
//! state is now materialized lazily in sparse maps keyed by vertex
//! bits, so memory follows the corpus footprint, not the cube size.

use hyperdex::core::sim_protocol::ProtocolSim;
use hyperdex::core::{HypercubeIndex, KeywordSet, ObjectId, SupersetQuery};
use hyperdex::simnet::latency::LatencyModel;

const R: u8 = 48;

fn set(s: &str) -> KeywordSet {
    KeywordSet::parse(s).expect("valid keywords")
}

fn oid(n: u64) -> ObjectId {
    ObjectId::from_raw(n)
}

/// A small corpus where every object shares one keyword, so a single
/// superset query must recover all of it.
fn corpus() -> Vec<(u64, KeywordSet)> {
    (0..60)
        .map(|i| (i, set(&format!("shared topic{} item{i}", i % 7))))
        .collect()
}

#[test]
fn r48_sim_constructs_sparse_and_serves_insert_and_superset() {
    // Construction itself is the regression: dense allocation at
    // r = 48 would abort long before any assertion ran.
    let mut sim = ProtocolSim::new(R, 7, LatencyModel::constant(1)).expect("r = 48 is legal now");
    sim.set_pruning(true);
    for (id, k) in corpus() {
        sim.insert(oid(id), k).expect("non-empty");
    }

    // Superset query over the whole corpus. The induced subcube has
    // ~2^47 vertices; occupancy pruning confines the walk to occupied
    // subtrees, which is what makes r = 48 serveable at all.
    let out = sim
        .search_sequential(&set("shared"), usize::MAX - 1)
        .expect("valid");
    let mut ids: Vec<u64> = out.results.iter().map(|r| r.object.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids, (0..60).collect::<Vec<u64>>(), "full recall at r = 48");

    // A narrower query still pins down its subset.
    let narrow = sim
        .search_sequential(&set("shared topic3"), usize::MAX - 1)
        .expect("valid");
    let mut narrow_ids: Vec<u64> = narrow.results.iter().map(|r| r.object.raw()).collect();
    narrow_ids.sort_unstable();
    assert_eq!(
        narrow_ids,
        (0..60).filter(|i| i % 7 == 3).collect::<Vec<u64>>()
    );

    // Sparse footprint: far fewer vertices (and endpoints) materialized
    // than the 2^48 a dense layout would demand — bounded by corpus
    // placements plus the vertices the pruned traversals touched.
    assert!(
        sim.materialized_vertices() < 4_096,
        "materialized {} vertices",
        sim.materialized_vertices()
    );
    assert!(
        sim.network().endpoint_count() < 4_096,
        "allocated {} endpoints",
        sim.network().endpoint_count()
    );
}

#[test]
fn r48_direct_engine_serves_pin_and_superset() {
    let mut idx = HypercubeIndex::new(R, 7).expect("valid");
    for (id, k) in corpus() {
        idx.insert(oid(id), k).expect("non-empty");
    }
    // Pin search is a single-vertex lookup — cube size is irrelevant.
    let pin = idx.pin_search(&set("shared topic3 item3"));
    assert_eq!(pin.results, vec![oid(3)]);
    assert_eq!(pin.stats.nodes_contacted, 1);

    // Pruned superset search stays within the occupied subtrees.
    let out = idx
        .superset_search(
            &SupersetQuery::new(set("shared"))
                .use_cache(false)
                .prune(true),
        )
        .expect("valid");
    assert_eq!(out.results.len(), 60, "full recall at r = 48");
}

#[test]
fn churn_runs_at_sparse_dimensions() {
    // Ownership reconciliation used to sweep all 2^r vertices per
    // round, capping churn at r <= 16. The sparse tracked-set port
    // walks only occupied/faulted vertices, so the full r = 48 cube
    // enables churn and converges without materializing anything
    // proportional to 2^48.
    let mut sim = ProtocolSim::new(R, 7, LatencyModel::constant(1)).expect("valid");
    for (id, k) in corpus() {
        sim.insert(oid(id), k).expect("non-empty");
    }
    sim.enable_churn(
        &hyperdex::simnet::churn::ChurnPlan::default(),
        hyperdex::core::churn::StabilizationConfig::default(),
        &[1, 2],
    )
    .expect("churn at r = 48 is no longer capped");
    sim.run_churn_to_quiescence();
    let st = sim.churn().expect("enabled");
    assert!(st.converged());
    assert!((st.consistency() - 1.0).abs() < f64::EPSILON);
}
