//! Cache-layer integration: correctness of cached answers under a
//! realistic skewed replay (the Figure 9 machinery).

use hyperdex::core::{HypercubeIndex, KeywordSet, SupersetQuery};
use hyperdex::workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

fn setup() -> (HypercubeIndex, Corpus, QueryLog) {
    let corpus = Corpus::generate(&CorpusConfig::small_test(), 5);
    let log = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 6);
    let mut index = HypercubeIndex::new(10, 0).expect("valid");
    for (id, k) in corpus.indexable() {
        index.insert(id, k.clone()).expect("non-empty");
    }
    (index, corpus, log)
}

#[test]
fn cached_answers_equal_uncached_answers() {
    let (mut index, _corpus, log) = setup();
    index.set_cache_capacity(500);
    // Replay a prefix twice; second pass must produce identical result
    // sets from cache.
    let queries: Vec<KeywordSet> = log.iter().take(100).cloned().collect();
    let mut first_pass = Vec::new();
    for q in &queries {
        let out = index
            .superset_search(&SupersetQuery::new(q.clone()))
            .expect("valid");
        let mut ids: Vec<_> = out.results.iter().map(|r| r.object).collect();
        ids.sort_unstable();
        first_pass.push(ids);
    }
    for (q, expected) in queries.iter().zip(&first_pass) {
        let out = index
            .superset_search(&SupersetQuery::new(q.clone()))
            .expect("valid");
        let mut ids: Vec<_> = out.results.iter().map(|r| r.object).collect();
        ids.sort_unstable();
        assert_eq!(&ids, expected, "cache changed the answer for {q}");
    }
}

#[test]
fn cache_cuts_nodes_contacted_under_skew() {
    let (index, _corpus, log) = setup();
    let replay: Vec<KeywordSet> = log.iter().take(1_000).cloned().collect();
    let run = |capacity: usize| -> u64 {
        let mut idx = index.clone();
        idx.set_cache_capacity(capacity);
        let mut contacted = 0;
        for q in &replay {
            contacted += idx
                .superset_search(&SupersetQuery::new(q.clone()))
                .expect("valid")
                .stats
                .nodes_contacted;
        }
        contacted
    };
    let without = run(0);
    let with = run(200);
    assert!(
        with * 4 < without,
        "cache should cut contacted nodes by >4x under 60% top-10 skew: {with} vs {without}"
    );
}

#[test]
fn cache_respects_stale_invalidation_semantics() {
    // Our cache has no invalidation (as in the paper); this test pins
    // the documented semantics: a cached entry may serve stale results
    // after an insert until it is evicted. Users disable the cache for
    // freshness-critical queries.
    let (mut index, corpus, _log) = setup();
    index.set_cache_capacity(100);
    let record = &corpus.records()[0];
    let query = record.keywords.clone();
    let before = index
        .superset_search(&SupersetQuery::new(query.clone()))
        .expect("valid");
    // Insert a brand-new object matching the same query.
    let new_id = hyperdex::core::ObjectId::from_raw(9_999_999);
    index.insert(new_id, query.clone()).expect("non-empty");
    let cached = index
        .superset_search(&SupersetQuery::new(query.clone()))
        .expect("valid");
    assert_eq!(
        cached.results.len(),
        before.results.len(),
        "cached (stale) answer is served"
    );
    // Bypassing the cache sees the new object immediately.
    let fresh = index
        .superset_search(&SupersetQuery::new(query).use_cache(false))
        .expect("valid");
    assert_eq!(fresh.results.len(), before.results.len() + 1);
}

#[test]
fn partial_thresholds_never_lose_matches_via_cache() {
    let (mut index, _corpus, log) = setup();
    index.set_cache_capacity(300);
    // Ask with a small threshold first (partial entry cached), then a
    // larger one: the larger query must NOT be served short.
    let q = log.pool()[0].clone();
    let small = index
        .superset_search(&SupersetQuery::new(q.clone()).threshold(1))
        .expect("valid");
    assert_eq!(small.results.len().min(1), small.results.len().min(1));
    let full_truth = index.matching_count(&q);
    let large = index
        .superset_search(&SupersetQuery::new(q.clone()))
        .expect("valid");
    assert_eq!(
        large.results.len(),
        full_truth,
        "large-threshold query served from a partial cache entry"
    );
}
