//! Occupancy-guided SBT pruning, end to end: the pruned traversal
//! returns bit-for-bit the unpruned result set while contacting
//! strictly fewer nodes on a realistic corpus, the summaries track
//! ground-truth occupancy through inserts and deletes, and the direct
//! engine and the message-level protocol prune identically.

use std::collections::BTreeMap;

use hyperdex::core::search::ExecutionMode;
use hyperdex::core::sim_protocol::ProtocolSim;
use hyperdex::core::{HypercubeIndex, SupersetQuery};
use hyperdex::simnet::latency::LatencyModel;
use hyperdex::workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig::small_test().with_objects(1_500), 33)
}

#[test]
fn pruned_search_is_lossless_and_strictly_cheaper_on_a_corpus() {
    let corpus = corpus();
    let log = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 34);
    let mut index = HypercubeIndex::new(10, 7).expect("valid");
    for (id, k) in corpus.indexable() {
        index.insert(id, k.clone()).expect("non-empty");
    }

    let mut plain_nodes = 0u64;
    let mut pruned_nodes = 0u64;
    let mut subtrees_cut = 0u64;
    for (qi, q) in log.pool().iter().take(30).enumerate() {
        for mode in [ExecutionMode::Sequential, ExecutionMode::LevelParallel] {
            let base = SupersetQuery::new(q.clone()).use_cache(false).mode(mode);
            let plain = index.superset_search(&base.clone()).expect("valid");
            let pruned = index.superset_search(&base.prune(true)).expect("valid");

            let mut want: Vec<_> = plain.results.iter().map(|r| r.object).collect();
            let mut got: Vec<_> = pruned.results.iter().map(|r| r.object).collect();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got, "query {qi} ({q}) lost or gained results");
            assert!(
                pruned.stats.nodes_contacted <= plain.stats.nodes_contacted,
                "query {qi} ({q}) got more expensive"
            );
            plain_nodes += plain.stats.nodes_contacted;
            pruned_nodes += pruned.stats.nodes_contacted;
            subtrees_cut += pruned.stats.pruned_subtrees;
        }
    }
    // 1024 vertices, ≤1500 objects: real queries must leave empty
    // subtrees behind, and the digests must actually cut them.
    assert!(
        pruned_nodes < plain_nodes,
        "pruning saved nothing ({pruned_nodes} vs {plain_nodes})"
    );
    assert!(subtrees_cut > 0, "no subtree was ever pruned");
}

#[test]
fn summaries_track_ground_truth_occupancy_through_deletes() {
    let corpus = corpus();
    let mut index = HypercubeIndex::new(10, 7).expect("valid");
    let mut inserted = Vec::new();
    for (id, k) in corpus.indexable() {
        index.insert(id, k.clone()).expect("non-empty");
        inserted.push((id, k.clone()));
    }
    // Delete every third object again.
    let mut live: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, (id, k)) in inserted.iter().enumerate() {
        if i % 3 == 0 {
            assert!(index.remove(*id, k), "inserted object must be removable");
        } else {
            *live.entry(index.vertex_for(k).bits()).or_insert(0) += 1;
        }
    }

    let summary = index.summary();
    let total: u64 = live.values().sum();
    assert_eq!(summary.total_objects(), total, "total drifted");
    for (&bits, &count) in &live {
        assert_eq!(
            summary.leaf_count(bits),
            count,
            "leaf {bits:#b} drifted from ground truth"
        );
    }
    // Every region the summary still holds is non-empty (deletes must
    // not leave zero-count tombstones that would never prune).
    assert!(summary.region_count() > 0);
}

#[test]
fn message_protocol_prunes_to_the_same_results_as_the_direct_engine() {
    let corpus = corpus();
    let log = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 34);
    let mut index = HypercubeIndex::new(9, 3).expect("valid");
    let mut sim = ProtocolSim::new(9, 3, LatencyModel::constant(1)).expect("valid");
    for (id, k) in corpus.indexable() {
        index.insert(id, k.clone()).expect("non-empty");
        sim.insert(id, k.clone()).expect("non-empty");
    }
    sim.set_pruning(true);

    for q in log.pool().iter().take(20) {
        let direct = index
            .superset_search(&SupersetQuery::new(q.clone()).use_cache(false).prune(true))
            .expect("valid");
        let wire = sim.search_sequential(q, usize::MAX - 1).expect("valid");

        let mut want: Vec<_> = direct.results.iter().map(|r| r.object).collect();
        let mut got: Vec<_> = wire.results.iter().map(|r| r.object).collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got, "layers disagree on {q}");
        assert_eq!(
            direct.stats.pruned_subtrees, wire.pruned_subtrees,
            "layers pruned different subtrees on {q}"
        );
    }
}
